//! §6 noise experiment — Example 9 and the threshold analysis.
//!
//! The paper analyzes a chain process A→B→C→D→E whose log contains
//! erroneous out-of-order executions: with the threshold `T` too low the
//! miner declares interior activities independent; the §6 bound
//! `T = m·ln2/(ln2 − ln ε)` balances the two failure modes. This binary
//! sweeps the error rate ε and the threshold T on the chain workload and
//! reports edge precision/recall of the mined graph, plus the analytic
//! bounds, demonstrating that the derived T recovers the chain across
//! the swept range. Run with `--release`.

use procmine_bench::TextTable;
use procmine_core::metrics::compare_models;
use procmine_core::noise::{ln_prob_dependency_lost, ln_prob_false_dependency, optimal_threshold};
use procmine_core::{mine_general_dag, MinedModel, MinerOptions};
use procmine_sim::noise::{corrupt_log, NoiseConfig};
use procmine_sim::{walk, ProcessModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn chain_model() -> ProcessModel {
    let names = ["A", "B", "C", "D", "E"];
    let mut b = ProcessModel::builder("chain5");
    for n in names {
        b = b.activity(n);
    }
    for w in names.windows(2) {
        b = b.edge(w[0], w[1]);
    }
    b.build().expect("chain is valid")
}

fn mine_quality(model: &ProcessModel, m: usize, eps: f64, t: u32, seed: u64) -> (f64, f64, bool) {
    let mut rng = StdRng::seed_from_u64(seed);
    let clean = walk::random_walk_log(model, m, &mut rng).expect("log");
    let noisy = corrupt_log(&clean, &NoiseConfig::swap_only(eps), &mut rng);
    let mined = mine_general_dag(&noisy, &MinerOptions::with_threshold(t)).expect("mine");
    let reference = MinedModel::from_graph(model.graph_clone());
    let r = compare_models(&reference, &mined).expect("same activities");
    (r.diff.precision(), r.diff.recall(), r.exact)
}

fn main() {
    let model = chain_model();
    let m = 1000usize;

    println!("Noise sweep (§6): chain A→B→C→D→E, m = {m} executions\n");

    // Part 1: fixed ε, sweep T — Example 9's failure mode at T too low,
    // plus degradation when T is far too high.
    let eps = 0.05;
    let t_opt =
        u32::try_from(optimal_threshold(m as u64, eps)).expect("threshold fits u32 at this m");
    println!("ε = {eps}: optimal T = {t_opt}");
    let mut table = TextTable::new(["T", "precision", "recall", "exact"]);
    for t in [1u32, 5, 20, t_opt, 2 * t_opt, (m as u32) / 2] {
        let (p, r, exact) = mine_quality(&model, m, eps, t, 42);
        table.row([
            t.to_string(),
            format!("{p:.3}"),
            format!("{r:.3}"),
            exact.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("(T=1 reproduces Example 9: a single swapped pair breaks the chain)\n");

    // Part 2: sweep ε at the derived optimal T.
    let mut table = TextTable::new([
        "eps",
        "T*",
        "precision",
        "recall",
        "exact",
        "ln P[lost]",
        "ln P[false]",
    ]);
    for eps in [0.01, 0.02, 0.05, 0.10, 0.20, 0.30] {
        let t =
            u32::try_from(optimal_threshold(m as u64, eps)).expect("threshold fits u32 at this m");
        let (p, r, exact) = mine_quality(&model, m, eps, t, 7);
        table.row([
            format!("{eps}"),
            t.to_string(),
            format!("{p:.3}"),
            format!("{r:.3}"),
            exact.to_string(),
            format!(
                "{:.1}",
                ln_prob_dependency_lost(m as u64, u64::from(t), eps)
            ),
            format!("{:.1}", ln_prob_false_dependency(m as u64, u64::from(t))),
        ]);
    }
    println!("{}", table.render());
    println!("shape: with the derived T no true dependency is lost (recall 1.0) across the");
    println!("swept ε range, while T=1 (no thresholding) loses edges as soon as any swap");
    println!("occurs. Residual precision loss comes from the corrupted executions");
    println!("remaining in the log: execution completeness (step 5) keeps edges they need.");
    println!("(ln bounds > 0 are vacuous — the bound exceeded 1 at that m, T.)\n");

    // Part 3: conformance-based cleaning — drop executions inconsistent
    // with the robust model and re-mine; the chain comes back exactly.
    let mut table = TextTable::new(["eps", "kept execs", "precision", "recall", "exact"]);
    for eps in [0.02, 0.05, 0.10, 0.20] {
        let t =
            u32::try_from(optimal_threshold(m as u64, eps)).expect("threshold fits u32 at this m");
        let mut rng = StdRng::seed_from_u64(42);
        let clean = walk::random_walk_log(&model, m, &mut rng).expect("log");
        let noisy = corrupt_log(&clean, &NoiseConfig::swap_only(eps), &mut rng);
        let robust = mine_general_dag(&noisy, &MinerOptions::with_threshold(t)).expect("mine");
        let filtered = noisy
            .filtered(|exec| procmine_core::conformance::check_execution(&robust, exec).is_empty());
        let remined = mine_general_dag(&filtered, &MinerOptions::default()).expect("mine");
        let reference = MinedModel::from_graph(model.graph_clone());
        let r = compare_models(&reference, &remined).expect("same activities");
        table.row([
            format!("{eps}"),
            format!("{}/{m}", filtered.len()),
            format!("{:.3}", r.diff.precision()),
            format!("{:.3}", r.diff.recall()),
            r.exact.to_string(),
        ]);
    }
    println!("cleaning pass (drop executions inconsistent with the robust model, re-mine):");
    println!("{}", table.render());
}
