//! Mining a process with a rework loop (Algorithm 3, §5).
//!
//! A document-review workflow where reviews can bounce back to editing
//! any number of times:
//!
//! ```text
//! Draft → Edit → Review → Publish
//!           ↑       |
//!           +-------+   (rejected: back to Edit)
//! ```
//!
//! Repeated activities break the DAG miners; instance labeling (`Edit₁`,
//! `Edit₂`, …) restores them and the final merge re-creates the loop.
//!
//! ```sh
//! cargo run --example cyclic_rework
//! ```

use procmine::log::WorkflowLog;
use procmine::mine::{mine_auto, mine_general_dag, Algorithm, MinerOptions};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // Generate executions with a geometric number of rework rounds.
    let mut rng = StdRng::seed_from_u64(11);
    let mut log = WorkflowLog::new();
    for _ in 0..200 {
        let mut seq = vec!["Draft"];
        let rounds = 1 + rng.gen_range(0..4);
        for _ in 0..rounds {
            seq.push("Edit");
            seq.push("Review");
        }
        seq.push("Publish");
        log.push_sequence(&seq).expect("valid sequence");
    }
    println!("generated {} executions; samples:", log.len());
    for s in log.display_sequences().iter().take(3) {
        println!("  {s}");
    }
    println!(
        "max repeats of one activity in an execution: {}",
        log.max_repeats()
    );

    // The DAG miner refuses — repeats demand Algorithm 3.
    let err = mine_general_dag(&log, &MinerOptions::default()).unwrap_err();
    println!("\nmine_general_dag: {err}");

    // mine_auto dispatches to the cyclic miner.
    let (model, algorithm) = mine_auto(&log, &MinerOptions::default()).expect("mining");
    assert_eq!(algorithm, Algorithm::Cyclic);
    println!("\nmined with {algorithm:?} ({} edges):", model.edge_count());
    for (u, v) in model.edges_named() {
        println!("  {u} -> {v}");
    }

    assert!(model.has_edge("Edit", "Review") && model.has_edge("Review", "Edit"));
    println!("\nthe Edit ⇄ Review rework cycle was recovered.");
    println!("\n{}", model.to_dot("document_review"));
}
