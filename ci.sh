#!/usr/bin/env bash
# Local CI gate: formatting, lints, then the tier-1 build + test pass.
# Run from the repo root. Fails fast on the first broken step.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

# The ingestion and mining libraries are panic-audited: unwrap/expect
# are denied, with `#[allow]` + a justification comment at the few
# provably infallible sites. Lib targets only — tests and benches may
# unwrap freely.
echo "==> panic audit: clippy -D clippy::unwrap_used -D clippy::expect_used (log, core)"
cargo clippy -p procmine-log -p procmine-core --lib --no-deps -- \
  -D warnings -D clippy::unwrap_used -D clippy::expect_used

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> corruption smoke subset"
cargo test -q --test corruption smoke_

echo "ci: OK"
