//! Property-based tests (proptest) over the core invariants:
//!
//! * mined models are conformal with their input log (the Definition 7
//!   guarantee, checked by the independent conformance module);
//! * transitive reduction preserves the closure and is minimal;
//! * SCC decomposition agrees with brute-force mutual reachability;
//! * codecs round-trip arbitrary logs.

use procmine::graph::reach::{has_path, transitive_closure};
use procmine::graph::reduction::{transitive_reduction_dag, transitive_reduction_naive};
use procmine::graph::{scc, DiGraph, NodeId};
use procmine::log::codec::{flowmark, jsonl, seqs};
use procmine::log::WorkflowLog;
use procmine::mine::conformance::check_conformance;
use procmine::mine::{mine_auto, MinerOptions};
use proptest::prelude::*;

/// Strategy: a random log of executions over activities `A`..`J`. Each
/// execution is a shuffled subset wrapped in fixed START/END
/// activities, so logs look like real partial process executions.
fn arb_log(max_execs: usize) -> impl Strategy<Value = WorkflowLog> {
    let activity_pool: Vec<String> = (b'B'..=b'I').map(|c| (c as char).to_string()).collect();
    let exec = proptest::sample::subsequence(activity_pool, 0..=8).prop_shuffle();
    proptest::collection::vec(exec, 1..=max_execs).prop_map(|execs| {
        let mut log = WorkflowLog::new();
        for middle in execs {
            let mut seq = vec!["A".to_string()];
            seq.extend(middle);
            seq.push("J".to_string());
            log.push_sequence(&seq).unwrap();
        }
        log
    })
}

/// Strategy: a random DAG over `n` nodes (edges only go forward in node
/// order, so acyclicity is structural).
fn arb_dag(n: usize) -> impl Strategy<Value = DiGraph<()>> {
    let pairs: Vec<(usize, usize)> = (0..n)
        .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
        .collect();
    proptest::sample::subsequence(pairs, 0..=n * (n - 1) / 2)
        .prop_map(move |edges| DiGraph::from_edges(vec![(); n], edges))
}

fn owned_sorted_edges(model: &procmine::mine::MinedModel) -> Vec<(String, String)> {
    let mut edges: Vec<(String, String)> = model
        .edges_named()
        .into_iter()
        .map(|(u, v)| (u.to_string(), v.to_string()))
        .collect();
    edges.sort();
    edges
}

/// Every miner as spelled through the plain convenience entry points
/// (which build a default session internally). One sorted edge list
/// per miner; errors compare by debug rendering.
fn edges_via_plain(
    log: &WorkflowLog,
    options: &MinerOptions,
    threads: usize,
) -> Vec<Result<Vec<(String, String)>, String>> {
    use procmine::mine::{
        mine_auto, mine_cyclic, mine_general_dag, mine_general_dag_parallel, mine_special_dag,
        IncrementalMiner,
    };
    let mut inc = IncrementalMiner::new(options.clone());
    inc.absorb_log(log).expect("logs here have no repeats");
    [
        mine_special_dag(log, options),
        mine_general_dag(log, options),
        mine_cyclic(log, options),
        mine_auto(log, options).map(|(m, _)| m),
        mine_general_dag_parallel(log, options, threads),
        inc.model(),
    ]
    .into_iter()
    .map(|r| {
        r.map(|m| owned_sorted_edges(&m))
            .map_err(|e| format!("{e:?}"))
    })
    .collect()
}

/// The same miners through the session pipeline, with `threads`
/// selecting the parallel execution strategy for the fifth entry.
fn edges_via_sessions(
    log: &WorkflowLog,
    options: &MinerOptions,
    threads: usize,
) -> Vec<Result<Vec<(String, String)>, String>> {
    use procmine::mine::{
        mine_auto_in, mine_cyclic_in, mine_general_dag_in, mine_special_dag_in, IncrementalMiner,
        MineSession,
    };
    let mut inc = IncrementalMiner::new(options.clone());
    inc.absorb_log(log).expect("logs here have no repeats");
    [
        mine_special_dag_in(&mut MineSession::new(), log, options),
        mine_general_dag_in(&mut MineSession::new(), log, options),
        mine_cyclic_in(&mut MineSession::new(), log, options),
        mine_auto_in(&mut MineSession::new(), log, options).map(|(m, _)| m),
        mine_general_dag_in(&mut MineSession::new().with_threads(threads), log, options),
        inc.model_in(&mut MineSession::new()),
    ]
    .into_iter()
    .map(|r| {
        r.map(|m| owned_sorted_edges(&m))
            .map_err(|e| format!("{e:?}"))
    })
    .collect()
}

/// One sorted edge list (or rendered error) per miner.
type MinerEdges = Vec<Result<Vec<(String, String)>, String>>;

/// The same miners through sessions all sharing an **enabled** metrics
/// registry. Returns the per-miner edge lists plus the registry, so the
/// caller can both compare output and check the samples collected.
fn edges_via_metered_sessions(
    log: &WorkflowLog,
    options: &MinerOptions,
    threads: usize,
) -> (MinerEdges, procmine::mine::Registry) {
    use procmine::mine::{
        mine_auto_in, mine_cyclic_in, mine_general_dag_in, mine_special_dag_in, IncrementalMiner,
        MineSession, Registry,
    };
    let reg = Registry::new();
    let session = || MineSession::new().with_obs(reg.clone());
    let mut inc = IncrementalMiner::new(options.clone());
    inc.absorb_log(log).expect("logs here have no repeats");
    let edges = [
        mine_special_dag_in(&mut session(), log, options),
        mine_general_dag_in(&mut session(), log, options),
        mine_cyclic_in(&mut session(), log, options),
        mine_auto_in(&mut session(), log, options).map(|(m, _)| m),
        mine_general_dag_in(&mut session().with_threads(threads), log, options),
        inc.model_in(&mut session()),
    ]
    .into_iter()
    .map(|r| {
        r.map(|m| owned_sorted_edges(&m))
            .map_err(|e| format!("{e:?}"))
    })
    .collect();
    (edges, reg)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn metered_miners_match_unmetered_output(log in arb_log(10), threads in 2usize..6) {
        // An enabled metrics registry must never steer mining: models
        // (and errors) are identical with metrics on or off, and the
        // shared registry actually collected stage-latency samples
        // whenever any miner succeeded.
        use procmine::mine::Stage;
        let options = MinerOptions::default();
        let (metered, reg) = edges_via_metered_sessions(&log, &options, threads);
        let plain = edges_via_plain(&log, &options, threads);
        let any_ok = plain.iter().any(Result::is_ok);
        prop_assert_eq!(plain, metered);
        if any_ok {
            let samples: u64 = [
                Stage::Lower,
                Stage::CountPairs,
                Stage::Prune,
                Stage::SccRemoval,
                Stage::Reduce,
                Stage::Assemble,
            ]
            .into_iter()
            .map(|s| reg.stage_latency(s).snapshot().count)
            .sum();
            prop_assert!(samples > 0, "no stage-latency samples recorded");
        }
    }

    #[test]
    fn mined_models_are_conformal(log in arb_log(12)) {
        let (model, _) = mine_auto(&log, &MinerOptions::default()).unwrap();
        let report = check_conformance(&model, &log);
        prop_assert!(report.is_conformal(), "log {:?}: {report:?}", log.display_sequences());
    }

    #[test]
    fn transitive_reduction_preserves_closure(g in arb_dag(10)) {
        let tr = transitive_reduction_dag(&g).unwrap();
        prop_assert_eq!(transitive_closure(&g), transitive_closure(&tr));
        prop_assert!(tr.edge_count() <= g.edge_count());
    }

    #[test]
    fn transitive_reduction_is_minimal(g in arb_dag(9)) {
        // Removing any edge of the reduction changes the closure.
        let tr = transitive_reduction_dag(&g).unwrap();
        let closure = transitive_closure(&tr);
        for (u, v) in tr.edges().collect::<Vec<_>>() {
            let mut smaller = tr.clone();
            smaller.remove_edge(u, v);
            prop_assert_ne!(
                transitive_closure(&smaller), closure.clone(),
                "edge {:?}->{:?} was removable", u, v
            );
        }
    }

    #[test]
    fn fast_tr_matches_naive(g in arb_dag(10)) {
        let fast = transitive_reduction_dag(&g).unwrap();
        let naive = transitive_reduction_naive(&g).unwrap();
        prop_assert_eq!(
            fast.edges().collect::<Vec<_>>(),
            naive.edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn scc_matches_mutual_reachability(edges in proptest::collection::vec((0usize..8, 0usize..8), 0..24)) {
        let g = DiGraph::from_edges(vec![(); 8], edges);
        let sccs = scc::tarjan_scc(&g);
        for u in 0..8 {
            for v in 0..8 {
                if u == v { continue; }
                let mutual = has_path(&g, NodeId::new(u), NodeId::new(v))
                    && has_path(&g, NodeId::new(v), NodeId::new(u));
                prop_assert_eq!(
                    sccs.same_component(NodeId::new(u), NodeId::new(v)),
                    mutual,
                    "u={} v={}", u, v
                );
            }
        }
    }

    #[test]
    fn dominators_match_path_enumeration(g in arb_dag(7)) {
        use procmine::graph::dominators::dominators;
        use procmine::graph::paths::all_simple_paths;
        let root = NodeId::new(0);
        let dom = dominators(&g, root);
        for v in 1..7usize {
            let v = NodeId::new(v);
            let paths = all_simple_paths(&g, root, v, 512);
            if paths.is_empty() {
                prop_assert!(!dom.is_reachable(v));
                continue;
            }
            for d in 0..7usize {
                let d = NodeId::new(d);
                let on_all = paths.iter().all(|p| p.contains(&d));
                prop_assert_eq!(
                    dom.dominates(d, v),
                    on_all,
                    "node {:?} vs {:?}", d, v
                );
            }
        }
    }

    #[test]
    fn cyclic_mined_models_fit_their_logs(rounds in proptest::collection::vec(1usize..4, 1..8)) {
        // Rework-loop logs: Draft (Edit Review)^k Publish.
        use procmine::mine::conformance::fitness;
        let mut log = WorkflowLog::new();
        for k in rounds {
            let mut seq = vec!["Draft"];
            for _ in 0..k {
                seq.push("Edit");
                seq.push("Review");
            }
            seq.push("Publish");
            log.push_sequence(&seq).unwrap();
        }
        let (model, _) = mine_auto(&log, &MinerOptions::default()).unwrap();
        let f = fitness(&model, &log);
        prop_assert_eq!(f.fraction(), 1.0, "{:?}", f);
    }

    #[test]
    fn codecs_round_trip(log in arb_log(8)) {
        let mut buf = Vec::new();
        flowmark::write_log(&log, &mut buf).unwrap();
        prop_assert_eq!(
            flowmark::read_log(buf.as_slice()).unwrap().display_sequences(),
            log.display_sequences()
        );

        let mut buf = Vec::new();
        jsonl::write_log(&log, &mut buf).unwrap();
        prop_assert_eq!(
            jsonl::read_log(buf.as_slice()).unwrap().display_sequences(),
            log.display_sequences()
        );

        let mut buf = Vec::new();
        seqs::write_log(&log, &mut buf).unwrap();
        prop_assert_eq!(
            seqs::read_log(buf.as_slice()).unwrap().display_sequences(),
            log.display_sequences()
        );
    }

    #[test]
    fn special_and_general_agree_on_complete_logs(
        perms in proptest::collection::vec(
            Just(vec!["B", "C", "D"]).prop_shuffle(),
            1..10
        )
    ) {
        // Complete logs: A + permutation of B,C,D + E.
        let mut log = WorkflowLog::new();
        for middle in perms {
            let mut seq = vec!["A"];
            seq.extend(middle);
            seq.push("E");
            log.push_sequence(&seq).unwrap();
        }
        let special = procmine::mine::mine_special_dag(&log, &MinerOptions::default()).unwrap();
        let general = procmine::mine::mine_general_dag(&log, &MinerOptions::default()).unwrap();
        let mut a = special.edges_named(); a.sort();
        let mut b = general.edges_named(); b.sort();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn xes_round_trips_arbitrary_logs(log in arb_log(8)) {
        use procmine::log::codec::xes;
        let mut buf = Vec::new();
        xes::write_log(&log, &mut buf).unwrap();
        let back = xes::read_log(buf.as_slice()).unwrap();
        prop_assert_eq!(back.display_sequences(), log.display_sequences());
    }

    #[test]
    fn parallel_matches_serial_on_arbitrary_logs(
        log in arb_log(10),
        threads in 1usize..6,
    ) {
        use procmine::mine::mine_general_dag_parallel;
        let serial = procmine::mine::mine_general_dag(&log, &MinerOptions::default()).unwrap();
        let parallel = mine_general_dag_parallel(&log, &MinerOptions::default(), threads).unwrap();
        let mut a = serial.edges_named(); a.sort();
        let mut b = parallel.edges_named(); b.sort();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn parallel_matches_serial_with_more_threads_than_executions(
        log in arb_log(3),
        threads in 8usize..64,
    ) {
        // Degenerate chunking: most threads receive no executions at
        // all; merge-at-join must still reproduce the serial result.
        use procmine::mine::{mine_general_dag_in, MineSession, MinerMetrics};
        let mut serial_metrics = MinerMetrics::new();
        let mut serial_session = MineSession::new().with_sink(&mut serial_metrics);
        let serial =
            mine_general_dag_in(&mut serial_session, &log, &MinerOptions::default()).unwrap();
        drop(serial_session);
        let mut parallel_metrics = MinerMetrics::new();
        let mut parallel_session = MineSession::new()
            .with_threads(threads)
            .with_sink(&mut parallel_metrics);
        let parallel =
            mine_general_dag_in(&mut parallel_session, &log, &MinerOptions::default()).unwrap();
        drop(parallel_session);
        let mut a = serial.edges_named(); a.sort();
        let mut b = parallel.edges_named(); b.sort();
        prop_assert_eq!(a, b);
        let mut sa = serial.edge_support().to_vec(); sa.sort();
        let mut sb = parallel.edge_support().to_vec(); sb.sort();
        prop_assert_eq!(sa, sb);
        prop_assert_eq!(serial_metrics.counters(), parallel_metrics.counters());
    }

    #[test]
    fn order_counts_strict_on_zero_duration_ties(
        execs in proptest::collection::vec(
            proptest::collection::vec((0usize..5, 0u64..4), 1..8),
            1..8,
        )
    ) {
        // Zero-duration instances crowded onto 4 timestamps: many pairs
        // share a stamp exactly, where the strict `<` rule must count
        // neither direction as ordered.
        use procmine::log::EventRecord;
        use procmine::mine::follows::OrderCounts;
        const NAMES: [&str; 5] = ["A", "B", "C", "D", "E"];
        let mut records = Vec::new();
        for (i, instances) in execs.iter().enumerate() {
            let case = format!("p{i}");
            let mut instances = instances.clone();
            instances.sort_by_key(|&(_, t)| t);
            for &(a, t) in &instances {
                records.push(EventRecord::start(case.clone(), NAMES[a], t));
                records.push(EventRecord::end(case.clone(), NAMES[a], t, None));
            }
        }
        let log = WorkflowLog::from_events(&records).unwrap();
        let counts = OrderCounts::from_log(&log);

        // Independent oracle over the assembled log.
        let n = log.activities().len();
        let mut expect_ordered = vec![0u32; n * n];
        let mut expect_cooccur = vec![0u32; n * n];
        for exec in log.executions() {
            let mut min_start = vec![u64::MAX; n];
            let mut max_end = vec![0u64; n];
            let mut present = vec![false; n];
            for inst in exec.instances() {
                let a = inst.activity.index();
                present[a] = true;
                min_start[a] = min_start[a].min(inst.start);
                max_end[a] = max_end[a].max(inst.end);
            }
            for u in 0..n {
                for v in 0..n {
                    if u != v && present[u] && present[v] {
                        expect_cooccur[u * n + v] += 1;
                        if max_end[u] < min_start[v] {
                            expect_ordered[u * n + v] += 1;
                        }
                    }
                }
            }
        }
        for u in 0..n {
            for v in 0..n {
                if u == v { continue; }
                prop_assert_eq!(counts.cooccur(u, v), expect_cooccur[u * n + v]);
                prop_assert_eq!(counts.ordered(u, v), expect_ordered[u * n + v]);
                // A pair sharing its only timestamp is unordered both
                // ways, never ordered both ways.
                prop_assert!(
                    counts.ordered(u, v) + counts.ordered(v, u) <= counts.cooccur(u, v),
                    "ordered counts cannot exceed co-occurrences"
                );
            }
        }
    }

    #[test]
    fn session_miners_match_plain(log in arb_log(8)) {
        use procmine::mine::{mine_auto_in, MineSession, MinerMetrics};
        let mut metrics = MinerMetrics::new();
        let mut session = MineSession::new().with_sink(&mut metrics);
        let (metered, alg_a) =
            mine_auto_in(&mut session, &log, &MinerOptions::default()).unwrap();
        drop(session);
        let (plain, alg_b) = mine_auto(&log, &MinerOptions::default()).unwrap();
        prop_assert_eq!(alg_a, alg_b);
        let mut a = metered.edges_named(); a.sort();
        let mut b = plain.edges_named(); b.sort();
        prop_assert_eq!(a, b);
        prop_assert_eq!(metrics.executions_scanned, log.len() as u64);
        prop_assert_eq!(metrics.edges_final, metered.edge_count() as u64);
    }

    #[test]
    fn incremental_matches_batch_on_arbitrary_logs(log in arb_log(10)) {
        use procmine::mine::IncrementalMiner;
        let mut inc = IncrementalMiner::new(MinerOptions::default());
        inc.absorb_log(&log).unwrap();
        let incremental = inc.model().unwrap();
        let batch = procmine::mine::mine_general_dag(&log, &MinerOptions::default()).unwrap();
        let mut a = incremental.edges_named(); a.sort();
        let mut b = batch.edges_named(); b.sort();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn mined_graphs_have_no_two_cycles_or_self_loops(log in arb_log(12)) {
        let (model, _) = mine_auto(&log, &MinerOptions::default()).unwrap();
        let g = model.graph();
        for (u, v) in g.edges() {
            prop_assert!(u != v, "self loop at {:?}", u);
            prop_assert!(!g.has_edge(v, u), "two-cycle {:?} <-> {:?}", u, v);
        }
    }

    #[test]
    fn mined_random_walk_models_are_conformal(
        vertices in 3usize..12,
        edge_pct in 20u64..80,
        m in 1usize..40,
        seed in 0u64..1000,
    ) {
        // §8.1 workload: a noise-free random-walk log mined back into a
        // model must be conformal with the log it came from, and the
        // conformance checker must handle it without panicking.
        use procmine::sim::randdag::{random_dag, RandomDagConfig};
        use procmine::sim::walk::random_walk_log;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = RandomDagConfig { vertices, edge_prob: edge_pct as f64 / 100.0 };
        let model = random_dag(&cfg, &mut rng).unwrap();
        let log = random_walk_log(&model, m, &mut rng).unwrap();
        let mined = procmine::mine::mine_general_dag(&log, &MinerOptions::default()).unwrap();
        let report = check_conformance(&mined, &log);
        prop_assert!(report.is_conformal(), "{report:?}");
    }

    #[test]
    fn session_conformance_matches_plain(log in arb_log(10)) {
        use procmine::mine::conformance::check_conformance_in;
        use procmine::mine::{ConformanceMetrics, MineSession};
        let (model, _) = mine_auto(&log, &MinerOptions::default()).unwrap();
        let plain = check_conformance(&model, &log);
        let mut metrics = ConformanceMetrics::new();
        let mut session = MineSession::new().with_sink(&mut metrics);
        let metered = check_conformance_in(&mut session, &model, &log);
        drop(session);
        prop_assert_eq!(&plain, &metered);
        prop_assert_eq!(metrics.executions_checked, log.len() as u64);
        prop_assert_eq!(
            metrics.consistent_executions,
            (log.len() - plain.inconsistent_executions.len()) as u64
        );
        prop_assert_eq!(metrics.missing_dependencies, plain.missing_dependencies.len() as u64);
        prop_assert_eq!(metrics.spurious_dependencies, plain.spurious_dependencies.len() as u64);
    }

    #[test]
    fn cyclic_agrees_with_general_on_repeat_free_logs(log in arb_log(10)) {
        let cyclic = procmine::mine::mine_cyclic(&log, &MinerOptions::default()).unwrap();
        let general = procmine::mine::mine_general_dag(&log, &MinerOptions::default()).unwrap();
        let mut a = cyclic.edges_named(); a.sort();
        let mut b = general.edges_named(); b.sort();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn session_miners_match_plain_entry_points_on_random_walks(
        vertices in 3usize..10,
        edge_pct in 20u64..80,
        m in 1usize..30,
        seed in 0u64..500,
        threads in 2usize..6,
    ) {
        // The plain convenience miners build a default session
        // internally: on §8.1 random-walk logs every miner — special,
        // general, cyclic, auto, the `threads`-wide parallel strategy,
        // and the incremental miner — must produce the exact result (or
        // the exact error) of its explicit session spelling.
        use procmine::sim::randdag::{random_dag, RandomDagConfig};
        use procmine::sim::walk::random_walk_log;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = RandomDagConfig { vertices, edge_prob: edge_pct as f64 / 100.0 };
        let model = random_dag(&cfg, &mut rng).unwrap();
        let log = random_walk_log(&model, m, &mut rng).unwrap();
        let options = MinerOptions::default();
        prop_assert_eq!(
            edges_via_plain(&log, &options, threads),
            edges_via_sessions(&log, &options, threads)
        );
    }

    #[test]
    fn session_miners_match_plain_entry_points_on_partial_logs(log in arb_log(10), threads in 2usize..6) {
        // Same equivalence over shuffled-subset logs, where the special
        // DAG miner may reject the log: the plain and the session form
        // must agree even on the error.
        let options = MinerOptions::default();
        prop_assert_eq!(
            edges_via_plain(&log, &options, threads),
            edges_via_sessions(&log, &options, threads)
        );
    }
}
