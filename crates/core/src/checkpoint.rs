//! Resumable miner state for crash-safe `--follow` sessions.
//!
//! A `procmine mine --follow --checkpoint FILE` pipeline owns three
//! pieces of state that are expensive or impossible to reconstruct
//! after a crash: the [`IncrementalMiner`]'s ordering counts and
//! retained executions, the
//! [`CaseAssembler`](procmine_log::stream::CaseAssembler)'s open cases,
//! and the byte position in the source log. This module defines the
//! *payload* types that capture all three — [`FollowCheckpoint`] and
//! its parts — and their binary wire encoding. The container (magic,
//! version, CRC-32, atomic writes) lives in
//! [`procmine_log::stream::checkpoint`]; this module only encodes and
//! decodes payload bytes inside that envelope.
//!
//! # Invariants
//!
//! * A checkpoint is only written at an *execution boundary* — never
//!   mid-absorb — so miner counts, assembler state, and source position
//!   are mutually consistent by construction.
//! * Decoding validates structure (matrix shapes, vertex ranges, event
//!   totals) beyond the envelope CRC: a checksum-valid file produced by
//!   a buggy writer must still be refused, not mined from.
//! * [`OptionsFingerprint`] pins the mining options that shape the
//!   counts. Resuming under different options would silently produce a
//!   model that matches *neither* configuration, so a fingerprint
//!   mismatch always refuses — `--recover` does not override it.

use crate::general_dag::OrderObservations;
use crate::{IncrementalMiner, MinerOptions, OnlineMiner, SnapshotPolicy};
use procmine_log::codec::CodecStats;
use procmine_log::stream::checkpoint::{read_payload, write_atomic};
use procmine_log::stream::{AssemblerState, CheckpointError, WireError, WireReader, WireWriter};
use procmine_log::{ActivityTable, IngestReport};
use std::path::Path;

/// Default `--checkpoint-every` cadence (consumed stream events
/// between checkpoint saves). A save costs one state encode plus two fsyncs
/// (file, then parent directory) under the atomic rename — measured
/// ~5–10 ms on commodity hardware; at this cadence that overhead
/// stays well under the 10 % budget the perfsuite gate pins even for
/// high-throughput streams, while a crash re-reads at most a few
/// hundred milliseconds of pipeline work.
pub const DEFAULT_CHECKPOINT_EVERY: u64 = 500_000;

fn invalid(message: String) -> CheckpointError {
    CheckpointError::Payload { message }
}

/// The mining options a checkpoint was produced under. Counts are only
/// meaningful relative to these, so [`FollowCheckpoint::load`]ed state
/// must be rejected when the resuming session's fingerprint differs —
/// see [`OptionsFingerprint::mismatch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptionsFingerprint {
    /// The §6 noise threshold `T` the model will be cut at.
    pub noise_threshold: u32,
    /// The assembler's open-case window (`0`: unbounded). Affects
    /// which executions get split by eviction, hence the counts.
    pub max_open_cases: u64,
    /// Whether end-of-input assembly is strict.
    pub strict_assembly: bool,
}

impl OptionsFingerprint {
    /// Describes how `self` (the resuming session) differs from
    /// `saved` (the checkpoint), or `None` when compatible.
    pub fn mismatch(&self, saved: &OptionsFingerprint) -> Option<String> {
        let mut diffs = Vec::new();
        if self.noise_threshold != saved.noise_threshold {
            diffs.push(format!(
                "noise threshold {} (checkpoint used {})",
                self.noise_threshold, saved.noise_threshold
            ));
        }
        if self.max_open_cases != saved.max_open_cases {
            diffs.push(format!(
                "open-case window {} (checkpoint used {})",
                self.max_open_cases, saved.max_open_cases
            ));
        }
        if self.strict_assembly != saved.strict_assembly {
            diffs.push(format!(
                "strict assembly {} (checkpoint used {})",
                self.strict_assembly, saved.strict_assembly
            ));
        }
        if diffs.is_empty() {
            None
        } else {
            Some(diffs.join(", "))
        }
    }

    fn encode_into(&self, w: &mut WireWriter) {
        w.put_u32(self.noise_threshold);
        w.put_u64(self.max_open_cases);
        w.put_u8(u8::from(self.strict_assembly));
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(OptionsFingerprint {
            noise_threshold: r.get_u32("fingerprint.noise_threshold")?,
            max_open_cases: r.get_u64("fingerprint.max_open_cases")?,
            strict_assembly: match r.get_u8("fingerprint.strict_assembly")? {
                0 => false,
                1 => true,
                other => {
                    return Err(WireError {
                        message: format!("fingerprint.strict_assembly: unknown tag {other}"),
                    })
                }
            },
        })
    }
}

/// The full resumable state of an [`IncrementalMiner`]: activity
/// universe, step-2 count matrices, and the lowered executions the
/// marking pass needs. Produced by [`IncrementalMiner::export_state`],
/// consumed by [`IncrementalMiner::from_state`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinerState {
    /// Interned activity names, in id order.
    pub activities: Vec<String>,
    /// Row-major `n × n` ordered-pair counts.
    pub ordered: Vec<u32>,
    /// Row-major `n × n` overlap counts.
    pub overlap: Vec<u32>,
    /// Lowered executions: `(dense vertex, start, end)` per instance.
    pub execs: Vec<Vec<(usize, u64, u64)>>,
    /// Total activity instances absorbed.
    pub events: u64,
}

impl MinerState {
    fn encode_into(&self, w: &mut WireWriter) {
        w.put_usize(self.activities.len());
        for name in &self.activities {
            w.put_str(name);
        }
        w.put_usize(self.ordered.len());
        for &c in &self.ordered {
            w.put_u32(c);
        }
        w.put_usize(self.overlap.len());
        for &c in &self.overlap {
            w.put_u32(c);
        }
        w.put_usize(self.execs.len());
        for exec in &self.execs {
            w.put_usize(exec.len());
            for &(v, start, end) in exec {
                w.put_usize(v);
                w.put_u64(start);
                w.put_u64(end);
            }
        }
        w.put_u64(self.events);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let n = r.get_len("miner.activities.len", 8)?;
        let mut activities = Vec::with_capacity(n);
        for _ in 0..n {
            activities.push(r.get_str("miner.activity")?);
        }
        let mut matrix = |what: &str| -> Result<Vec<u32>, WireError> {
            let cells = r.get_len(what, 4)?;
            let mut m = Vec::with_capacity(cells);
            for _ in 0..cells {
                m.push(r.get_u32(what)?);
            }
            Ok(m)
        };
        let ordered = matrix("miner.ordered")?;
        let overlap = matrix("miner.overlap")?;
        let count = r.get_len("miner.execs.len", 8)?;
        let mut execs = Vec::with_capacity(count);
        for _ in 0..count {
            let len = r.get_len("miner.exec.len", 24)?;
            let mut exec = Vec::with_capacity(len);
            for _ in 0..len {
                exec.push((
                    r.get_usize("miner.exec.vertex")?,
                    r.get_u64("miner.exec.start")?,
                    r.get_u64("miner.exec.end")?,
                ));
            }
            execs.push(exec);
        }
        let events = r.get_u64("miner.events")?;
        Ok(MinerState {
            activities,
            ordered,
            overlap,
            execs,
            events,
        })
    }
}

/// The resumable state of an [`OnlineMiner`]: the inner miner plus the
/// cadence counters that survive a restart. The *checkpoint* cadence
/// counter is deliberately absent — the resume point is by definition
/// a checkpoint, so it restarts at zero.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OnlineMinerState {
    /// The wrapped incremental miner's state.
    pub miner: MinerState,
    /// Activity instances absorbed over the miner's whole life.
    pub events_absorbed: u64,
    /// Events absorbed since the last model snapshot.
    pub events_since_snapshot: u64,
    /// Model snapshots materialized so far.
    pub snapshots_taken: u64,
}

impl OnlineMinerState {
    fn encode_into(&self, w: &mut WireWriter) {
        self.miner.encode_into(w);
        w.put_u64(self.events_absorbed);
        w.put_u64(self.events_since_snapshot);
        w.put_u64(self.snapshots_taken);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(OnlineMinerState {
            miner: MinerState::decode(r)?,
            events_absorbed: r.get_u64("online.events_absorbed")?,
            events_since_snapshot: r.get_u64("online.events_since_snapshot")?,
            snapshots_taken: r.get_u64("online.snapshots_taken")?,
        })
    }
}

/// Where the follow session stood in its source log when the
/// checkpoint was taken, plus the parse-side accounting accumulated up
/// to that point (so a resumed session's final report covers the whole
/// stream, not just the tail).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SourceState {
    /// Absolute byte offset to seek the source to on resume — always a
    /// record boundary.
    pub byte_offset: u64,
    /// Full lines consumed before that offset.
    pub line: u64,
    /// The source file's total length when the checkpoint was taken.
    /// A smaller file at resume time means truncation or rotation —
    /// the offset no longer addresses the same data.
    pub source_len: u64,
    /// Byte/event tallies accumulated before the checkpoint.
    pub stats: CodecStats,
    /// Parse-side ingest accounting accumulated before the checkpoint.
    pub report: IngestReport,
}

impl SourceState {
    fn encode_into(&self, w: &mut WireWriter) {
        w.put_u64(self.byte_offset);
        w.put_u64(self.line);
        w.put_u64(self.source_len);
        procmine_log::stream::checkpoint::encode_stats(w, &self.stats);
        procmine_log::stream::checkpoint::encode_report(w, &self.report);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(SourceState {
            byte_offset: r.get_u64("source.byte_offset")?,
            line: r.get_u64("source.line")?,
            source_len: r.get_u64("source.source_len")?,
            stats: procmine_log::stream::checkpoint::decode_stats(r)?,
            report: procmine_log::stream::checkpoint::decode_report(r)?,
        })
    }
}

/// Everything a crashed `--follow` session needs to continue as if
/// uninterrupted: options fingerprint, miner state, assembler state,
/// and source position. One value of this type is the payload of one
/// checkpoint file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FollowCheckpoint {
    /// The options the state was accumulated under.
    pub fingerprint: OptionsFingerprint,
    /// The online miner's resumable state.
    pub miner: OnlineMinerState,
    /// The case assembler's resumable state.
    pub assembler: AssemblerState,
    /// The source position and pre-checkpoint accounting.
    pub source: SourceState,
}

impl FollowCheckpoint {
    /// Encodes the checkpoint payload (envelope not included).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        self.fingerprint.encode_into(&mut w);
        self.miner.encode_into(&mut w);
        self.assembler.encode_into(&mut w);
        self.source.encode_into(&mut w);
        w.into_bytes()
    }

    /// Decodes a checkpoint payload. Requires full consumption —
    /// trailing bytes mean a writer/reader skew the version field
    /// failed to catch.
    pub fn decode(payload: &[u8]) -> Result<Self, CheckpointError> {
        let mut r = WireReader::new(payload);
        let fingerprint = OptionsFingerprint::decode(&mut r)?;
        let miner = OnlineMinerState::decode(&mut r)?;
        let assembler = AssemblerState::decode(&mut r)?;
        let source = SourceState::decode(&mut r)?;
        r.finish()?;
        Ok(FollowCheckpoint {
            fingerprint,
            miner,
            assembler,
            source,
        })
    }

    /// Writes the checkpoint to `path` atomically (envelope into a tmp
    /// file, fsync, rename). A crash during the save leaves the
    /// previous checkpoint intact.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        write_atomic(path, &self.encode())
    }

    /// Reads and fully validates a checkpoint from `path`: envelope
    /// (magic, version, length, CRC-32), then payload structure.
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        FollowCheckpoint::decode(&read_payload(path)?)
    }
}

impl IncrementalMiner {
    /// Exports the miner's full resumable state.
    pub fn export_state(&self) -> MinerState {
        // The wire format keeps the original nested (per-execution)
        // layout, so checkpoints written before the columnar refactor
        // stay readable; the columns are re-nested here and re-flattened
        // in `from_state`.
        let execs = (0..self.execs.exec_count())
            .map(|i| {
                let e = self.execs.exec(i);
                (0..e.len())
                    .map(|j| (e.activities[j] as usize, e.starts[j], e.ends[j]))
                    .collect()
            })
            .collect();
        MinerState {
            activities: self.table.names().to_vec(),
            ordered: self.obs.ordered.clone(),
            overlap: self.obs.overlap.clone(),
            execs,
            events: self.events,
        }
    }

    /// Rebuilds a miner from an exported [`MinerState`]. Structural
    /// invariants are re-validated — matrix shapes, vertex ranges, the
    /// event total, per-execution repeat-freedom — so a corrupt or
    /// hand-forged state is refused instead of mined from.
    pub fn from_state(options: MinerOptions, state: MinerState) -> Result<Self, CheckpointError> {
        let n = state.activities.len();
        let table = ActivityTable::from_names(state.activities.iter().map(String::as_str));
        if table.len() != n {
            return Err(invalid(format!(
                "miner activity table has duplicate names ({} unique of {n})",
                table.len()
            )));
        }
        if state.ordered.len() != n * n || state.overlap.len() != n * n {
            return Err(invalid(format!(
                "miner count matrices are {}/{} cells, expected {} for {n} activities",
                state.ordered.len(),
                state.overlap.len(),
                n * n
            )));
        }
        let mut events: u64 = 0;
        let mut seen = vec![false; n];
        for (i, exec) in state.execs.iter().enumerate() {
            if exec.is_empty() {
                return Err(invalid(format!("miner execution {i} is empty")));
            }
            seen.iter_mut().for_each(|s| *s = false);
            for &(v, _, _) in exec {
                if v >= n {
                    return Err(invalid(format!(
                        "miner execution {i} references vertex {v}, table has {n} activities"
                    )));
                }
                if seen[v] {
                    return Err(invalid(format!(
                        "miner execution {i} repeats vertex {v} (acyclic miner state)"
                    )));
                }
                seen[v] = true;
            }
            events += exec.len() as u64;
        }
        if events != state.events {
            return Err(invalid(format!(
                "miner event total {} does not match the {events} instances in its executions",
                state.events
            )));
        }
        let mut execs =
            procmine_log::EventColumns::with_capacity(state.execs.len(), events as usize);
        for exec in &state.execs {
            execs.push_exec(exec.iter().map(|&(v, s, e)| (v as u32, s, e)));
        }
        Ok(IncrementalMiner {
            options,
            table,
            obs: OrderObservations {
                ordered: state.ordered,
                overlap: state.overlap,
            },
            execs,
            events,
        })
    }
}

impl OnlineMiner {
    /// Exports the online miner's full resumable state (the checkpoint
    /// cadence counter resets on resume and is not part of it).
    pub fn export_state(&self) -> OnlineMinerState {
        OnlineMinerState {
            miner: self.inner.export_state(),
            events_absorbed: self.events_absorbed,
            events_since_snapshot: self.events_since_snapshot,
            snapshots_taken: self.snapshots_taken,
        }
    }

    /// Rebuilds an online miner from an exported [`OnlineMinerState`]
    /// under the given options and snapshot policy.
    pub fn from_state(
        options: MinerOptions,
        policy: SnapshotPolicy,
        state: OnlineMinerState,
    ) -> Result<Self, CheckpointError> {
        if state.events_since_snapshot > state.events_absorbed {
            return Err(invalid(format!(
                "online miner counters are inconsistent: {} events since snapshot, {} absorbed",
                state.events_since_snapshot, state.events_absorbed
            )));
        }
        Ok(OnlineMiner::resume_parts(
            IncrementalMiner::from_state(options, state.miner)?,
            policy,
            state.events_absorbed,
            state.events_since_snapshot,
            state.snapshots_taken,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use procmine_log::WorkflowLog;

    fn seeded_miner() -> OnlineMiner {
        let log = WorkflowLog::from_strings(["ABCF", "ACDF", "ADEF", "AECF"]).unwrap();
        let mut miner = OnlineMiner::new(MinerOptions::default(), SnapshotPolicy::every(6));
        for exec in log.executions() {
            miner.absorb(exec, log.activities()).unwrap();
        }
        miner
    }

    fn checkpoint() -> FollowCheckpoint {
        let mut report = IngestReport {
            records_parsed: 31,
            ..IngestReport::default()
        };
        report.record_error(100, 7, "garbage line");
        FollowCheckpoint {
            fingerprint: OptionsFingerprint {
                noise_threshold: 2,
                max_open_cases: 512,
                strict_assembly: false,
            },
            miner: seeded_miner().export_state(),
            assembler: AssemblerState {
                activities: vec!["A".to_string(), "B".to_string()],
                open: Vec::new(),
                clock: 9,
                executions_emitted: 4,
                report: IngestReport::default(),
            },
            source: SourceState {
                byte_offset: 4096,
                line: 128,
                source_len: 8192,
                stats: CodecStats {
                    bytes_read: 4096,
                    events_parsed: 32,
                    executions_parsed: 0,
                },
                report,
            },
        }
    }

    #[test]
    fn follow_checkpoint_roundtrips_through_bytes_and_disk() {
        let ck = checkpoint();
        assert_eq!(FollowCheckpoint::decode(&ck.encode()).unwrap(), ck);

        let path = std::env::temp_dir().join(format!(
            "procmine-follow-ckpt-test-{}.ckpt",
            std::process::id()
        ));
        ck.save(&path).unwrap();
        assert_eq!(FollowCheckpoint::load(&path).unwrap(), ck);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resumed_miner_snapshot_matches_original() {
        // Satellite invariant: export → resume → snapshot equals the
        // uninterrupted miner's snapshot, support counts included.
        let mut original = seeded_miner();
        let state = original.export_state();
        let mut resumed =
            OnlineMiner::from_state(MinerOptions::default(), SnapshotPolicy::every(6), state)
                .unwrap();
        assert_eq!(resumed.events_absorbed(), original.events_absorbed());
        assert_eq!(resumed.executions(), original.executions());

        let a = original.snapshot().unwrap();
        let b = resumed.snapshot().unwrap();
        assert_eq!(a.edges_named(), b.edges_named());
        assert_eq!(a.edge_support(), b.edge_support());

        // Both keep absorbing after the fork and stay in lockstep.
        let more = WorkflowLog::from_strings(["ABDF"]).unwrap();
        for exec in more.executions() {
            original.absorb(exec, more.activities()).unwrap();
            resumed.absorb(exec, more.activities()).unwrap();
        }
        assert_eq!(
            original.snapshot().unwrap().edge_support(),
            resumed.snapshot().unwrap().edge_support()
        );
    }

    #[test]
    fn corrupt_miner_states_are_refused() {
        let good = seeded_miner().export_state().miner;
        let reject = |state: MinerState, needle: &str| {
            let err = IncrementalMiner::from_state(MinerOptions::default(), state)
                .map(|_| ())
                .expect_err(needle)
                .to_string();
            assert!(err.contains(needle), "got: {err}");
        };

        let mut dup = good.clone();
        dup.activities[1] = dup.activities[0].clone();
        reject(dup, "duplicate names");

        let mut short = good.clone();
        short.ordered.pop();
        reject(short, "count matrices");

        let mut out_of_range = good.clone();
        out_of_range.execs[0][0].0 = good.activities.len();
        reject(out_of_range, "references vertex");

        let mut repeated = good.clone();
        let first = repeated.execs[0][0];
        repeated.execs[0].push(first);
        reject(repeated, "repeats vertex");

        let mut miscounted = good.clone();
        miscounted.events += 1;
        reject(miscounted, "event total");

        let mut empty = good.clone();
        empty.execs.push(Vec::new());
        reject(empty, "is empty");

        let mut counters = OnlineMinerState {
            miner: good,
            events_absorbed: 5,
            events_since_snapshot: 6,
            snapshots_taken: 0,
        };
        let err = OnlineMiner::from_state(
            MinerOptions::default(),
            SnapshotPolicy::on_demand(),
            counters.clone(),
        )
        .map(|_| ())
        .expect_err("inconsistent counters accepted")
        .to_string();
        assert!(err.contains("inconsistent"), "got: {err}");
        counters.events_since_snapshot = 5;
        counters.events_absorbed = 16;
        assert!(OnlineMiner::from_state(
            MinerOptions::default(),
            SnapshotPolicy::on_demand(),
            counters
        )
        .is_ok());
    }

    #[test]
    fn fingerprint_mismatch_is_described_field_by_field() {
        let saved = OptionsFingerprint {
            noise_threshold: 1,
            max_open_cases: 1024,
            strict_assembly: false,
        };
        assert!(saved.mismatch(&saved).is_none());
        let other = OptionsFingerprint {
            noise_threshold: 3,
            max_open_cases: 8,
            strict_assembly: true,
        };
        let diff = other.mismatch(&saved).unwrap();
        assert!(diff.contains("noise threshold 3"));
        assert!(diff.contains("open-case window 8"));
        assert!(diff.contains("strict assembly true"));
    }

    #[test]
    fn truncated_or_flipped_payload_is_refused() {
        let payload = checkpoint().encode();
        for cut in [0, 1, payload.len() / 2, payload.len() - 1] {
            assert!(
                FollowCheckpoint::decode(&payload[..cut]).is_err(),
                "cut at {cut} accepted"
            );
        }
        // Trailing garbage is a skew, not slack.
        let mut padded = payload.clone();
        padded.push(0);
        assert!(FollowCheckpoint::decode(&padded).is_err());
    }
}
