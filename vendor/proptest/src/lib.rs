//! A minimal, std-only stand-in for
//! [`proptest`](https://crates.io/crates/proptest), vendored because
//! this build environment has no registry access.
//!
//! Provides deterministic random-input testing without shrinking: each
//! `proptest!` test derives a fixed RNG seed from its path, generates
//! `Config::cases` inputs from its strategies, and runs the body with
//! `prop_assert*` mapped onto the std `assert*` macros. On failure the
//! panic message reports the case number so the failure is reproducible
//! (the stream is a pure function of the test path and case index).
//!
//! Covered API: `Strategy` (`prop_map`, `prop_shuffle`), ranges and
//! tuples as strategies, `Just`, `sample::subsequence`,
//! `collection::vec`, `ProptestConfig::with_cases`, and the `proptest!`
//! / `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` macros.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Test configuration and the deterministic RNG driving generation.

    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    /// Run configuration; only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random inputs to run each test body with.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` inputs per test.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// SplitMix64 generator, seeded from the test path so runs are
    /// reproducible.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Derives a deterministic generator for a named test.
        pub fn for_test(name: &str) -> Self {
            let mut h = DefaultHasher::new();
            name.hash(&mut h);
            TestRng {
                state: h.finish() ^ 0x9e37_79b9_7f4a_7c15,
            }
        }

        /// Next 64 random bits (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `0..n` (n > 0), via Lemire's widening
        /// multiply with rejection of the biased low region.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            let mut wide = (self.next_u64() as u128) * (n as u128);
            let mut lo = wide as u64;
            if lo < n {
                let threshold = n.wrapping_neg() % n;
                while lo < threshold {
                    wide = (self.next_u64() as u128) * (n as u128);
                    lo = wide as u64;
                }
            }
            (wide >> 64) as u64
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Shuffles generated collections.
        fn prop_shuffle(self) -> Shuffle<Self>
        where
            Self: Sized,
            Self::Value: ShuffleOps,
        {
            Shuffle { inner: self }
        }
    }

    /// Collections whose element order can be randomized in place.
    pub trait ShuffleOps {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle_with(&mut self, rng: &mut TestRng);
    }

    impl<T> ShuffleOps for Vec<T> {
        fn shuffle_with(&mut self, rng: &mut TestRng) {
            for i in (1..self.len()).rev() {
                let j = rng.below((i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }
    }

    /// Strategy always yielding a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_shuffle`].
    pub struct Shuffle<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for Shuffle<S>
    where
        S::Value: ShuffleOps,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            let mut v = self.inner.generate(rng);
            v.shuffle_with(rng);
            v
        }
    }

    macro_rules! range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end as i128 - self.start as i128) as u64;
                    self.start.wrapping_add(rng.below(width) as $ty)
                }
            }
            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let width = (hi as i128 - lo as i128 + 1) as u64;
                    if width == 0 {
                        // Full-width range: raw sample.
                        return rng.next_u64() as $ty;
                    }
                    lo.wrapping_add(rng.below(width) as $ty)
                }
            }
        )*};
    }
    range_strategy!(usize, u64, u32, i64, i32, u8, u16);

    macro_rules! tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    }
}

/// Length constraints for collection strategies.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl SizeRange {
    fn pick(&self, rng: &mut test_runner::TestRng) -> usize {
        let width = self.hi - self.lo + 1;
        self.lo + rng.below(width as u64) as usize
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

pub mod sample {
    //! Strategies sampling from explicit value pools.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use crate::SizeRange;

    /// Strategy yielding order-preserving random subsequences of a
    /// source vector.
    pub struct Subsequence<T: Clone> {
        pool: Vec<T>,
        size: SizeRange,
    }

    /// Picks a random subsequence (order-preserving subset) of `pool`
    /// whose length falls in `size`.
    pub fn subsequence<T: Clone>(pool: Vec<T>, size: impl Into<SizeRange>) -> Subsequence<T> {
        Subsequence {
            pool,
            size: size.into(),
        }
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;
        fn generate(&self, rng: &mut TestRng) -> Vec<T> {
            let n = self.pool.len();
            let k = self.size.pick(rng).min(n);
            // Choose k distinct indices via a partial Fisher-Yates,
            // then restore source order.
            let mut idx: Vec<usize> = (0..n).collect();
            for i in 0..k {
                let j = i + rng.below((n - i) as u64) as usize;
                idx.swap(i, j);
            }
            let mut chosen = idx[..k].to_vec();
            chosen.sort_unstable();
            chosen.into_iter().map(|i| self.pool[i].clone()).collect()
        }
    }
}

pub mod collection {
    //! Strategies building collections of generated elements.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use crate::SizeRange;

    /// Strategy yielding vectors of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length falls in `size`, with each
    /// element drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from
/// strategies; see the crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ($cfg:expr;) => {};
    ($cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            let __strategies = ($($strat,)+);
            let mut __rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__config.cases {
                let __inputs =
                    $crate::strategy::Strategy::generate(&__strategies, &mut __rng);
                let __run = || {
                    let ($($arg,)+) = __inputs;
                    $body
                };
                if let Err(payload) = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(__run),
                ) {
                    eprintln!(
                        "proptest: {} failed at case {}/{} (deterministic seed; \
                         re-run reproduces it)",
                        stringify!($name),
                        __case + 1,
                        __config.cases,
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::__proptest_tests! { $cfg; $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy as _;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = crate::test_runner::TestRng::for_test("ranges");
        for _ in 0..1000 {
            let v = (3usize..7).generate(&mut rng);
            assert!((3..7).contains(&v));
            let w = (0i64..=0).generate(&mut rng);
            assert_eq!(w, 0);
        }
    }

    #[test]
    fn subsequence_preserves_order() {
        let mut rng = crate::test_runner::TestRng::for_test("subseq");
        let pool: Vec<u32> = (0..10).collect();
        for _ in 0..200 {
            let s = crate::sample::subsequence(pool.clone(), 0..=10).generate(&mut rng);
            assert!(s.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn vec_respects_size() {
        let mut rng = crate::test_runner::TestRng::for_test("vec");
        for _ in 0..200 {
            let v = crate::collection::vec(0u32..5, 2..4).generate(&mut rng);
            assert!(v.len() == 2 || v.len() == 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_grammar_works(x in 0usize..10, y in 0usize..10) {
            prop_assert!(x < 10);
            prop_assert_ne!(x + y + 1, 0);
        }
    }
}
