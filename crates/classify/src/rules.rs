//! Rule extraction: turning a fitted tree into readable conditions.
//!
//! §7: "the use of a decision tree classifier will give a set of simple
//! rules that classify when a given activity is taken or not". Each
//! root-to-positive-leaf path becomes one [`Rule`] — a conjunction of
//! threshold atoms; the rule set (a disjunction of rules) is the learned
//! edge condition.

use crate::tree::{DecisionTree, Node};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One threshold test on an output component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Atom {
    /// `o[feature] <= threshold`.
    Le {
        /// Component index.
        feature: usize,
        /// Threshold.
        threshold: i64,
    },
    /// `o[feature] > threshold`.
    Gt {
        /// Component index.
        feature: usize,
        /// Threshold.
        threshold: i64,
    },
}

impl Atom {
    /// Evaluates the atom (missing components read as 0).
    pub fn eval(&self, x: &[i64]) -> bool {
        match *self {
            Atom::Le { feature, threshold } => x.get(feature).copied().unwrap_or(0) <= threshold,
            Atom::Gt { feature, threshold } => x.get(feature).copied().unwrap_or(0) > threshold,
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Atom::Le { feature, threshold } => write!(f, "o[{feature}] <= {threshold}"),
            Atom::Gt { feature, threshold } => write!(f, "o[{feature}] > {threshold}"),
        }
    }
}

/// A conjunction of atoms leading to a positive leaf, with the leaf's
/// training support.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rule {
    /// The conjoined tests (empty = always true).
    pub atoms: Vec<Atom>,
    /// `(negative, positive)` training counts at the leaf.
    pub support: (usize, usize),
}

impl Rule {
    /// `true` if the vector satisfies every atom.
    pub fn matches(&self, x: &[i64]) -> bool {
        self.atoms.iter().all(|a| a.eval(x))
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.atoms.is_empty() {
            write!(f, "true")?;
        } else {
            for (i, a) in self.atoms.iter().enumerate() {
                if i > 0 {
                    write!(f, " && ")?;
                }
                write!(f, "{a}")?;
            }
        }
        write!(f, "  [{}+/{}-]", self.support.1, self.support.0)
    }
}

/// Extracts the positive rules of a tree: one per leaf predicting
/// `true`. The disjunction of the returned rules is exactly the tree's
/// positive region.
pub fn rules_of(tree: &DecisionTree) -> Vec<Rule> {
    let mut rules = Vec::new();
    let mut path = Vec::new();
    walk(tree.root(), &mut path, &mut rules);
    rules
}

fn walk(node: &Node, path: &mut Vec<Atom>, rules: &mut Vec<Rule>) {
    match node {
        Node::Leaf { label, counts } => {
            if *label {
                rules.push(Rule {
                    atoms: path.clone(),
                    support: *counts,
                });
            }
        }
        Node::Split {
            feature,
            threshold,
            left,
            right,
        } => {
            path.push(Atom::Le {
                feature: *feature,
                threshold: *threshold,
            });
            walk(left, path, rules);
            path.pop();
            path.push(Atom::Gt {
                feature: *feature,
                threshold: *threshold,
            });
            walk(right, path, rules);
            path.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dataset, TreeConfig};

    #[test]
    fn threshold_rule_extracted() {
        let data = Dataset::from_rows((0..100).map(|i| (vec![i], i > 50)).collect()).unwrap();
        let tree = DecisionTree::fit(&data, &TreeConfig::default());
        let rules = rules_of(&tree);
        assert_eq!(rules.len(), 1);
        assert_eq!(
            rules[0].atoms,
            vec![Atom::Gt {
                feature: 0,
                threshold: 50
            }]
        );
        assert_eq!(rules[0].support, (0, 49));
        assert!(rules[0].matches(&[51]) && !rules[0].matches(&[50]));
        assert_eq!(rules[0].to_string(), "o[0] > 50  [49+/0-]");
    }

    #[test]
    fn rules_reproduce_tree_predictions() {
        let mut rows = Vec::new();
        for x0 in 0..12i64 {
            for x1 in 0..6i64 {
                rows.push((vec![x0, x1], x0 > 5 && x1 <= 2));
            }
        }
        let data = Dataset::from_rows(rows).unwrap();
        let tree = DecisionTree::fit(&data, &TreeConfig::default());
        let rules = rules_of(&tree);
        for (x, _) in data.iter() {
            let by_rules = rules.iter().any(|r| r.matches(x));
            assert_eq!(by_rules, tree.predict(x), "at {x:?}");
        }
    }

    #[test]
    fn always_true_tree_yields_empty_conjunction() {
        let data = Dataset::from_rows(vec![(vec![1], true), (vec![2], true)]).unwrap();
        let tree = DecisionTree::fit(&data, &TreeConfig::default());
        let rules = rules_of(&tree);
        assert_eq!(rules.len(), 1);
        assert!(rules[0].atoms.is_empty());
        assert!(rules[0].to_string().starts_with("true"));
    }

    #[test]
    fn always_false_tree_yields_no_rules() {
        let data = Dataset::from_rows(vec![(vec![1], false), (vec![2], false)]).unwrap();
        let tree = DecisionTree::fit(&data, &TreeConfig::default());
        assert!(rules_of(&tree).is_empty());
    }
}
