//! Differential pinning of the zero-copy XES parser against the
//! retained character-based reference parser
//! (`codec::xes_reference`), across the corruption fuzz corpus and
//! every recovery policy: the rewrite must produce the *same*
//! `WorkflowLog` (activity table, execution ids, sequences, outputs,
//! timestamps), the *same* `IngestReport` (error offsets, line:column
//! positions, skip counts), and the *same* rendered error — or it is
//! not a rewrite but a behavior change. A second family of properties
//! pins the chunked-parallel decode to the serial one.

use procmine::log::codec::{xes, xes_reference, CodecStats};
use procmine::log::fault::{corrupt_bytes, FaultConfig};
use procmine::log::{Execution, IngestReport, RecoveryPolicy, WorkflowLog};
use proptest::prelude::*;

/// Strategy: a random log over activities `B`..`I` framed by `A`/`J`
/// (the corruption suite's shape, so both suites fuzz the same space).
fn arb_log(max_execs: usize) -> impl Strategy<Value = WorkflowLog> {
    let activity_pool: Vec<String> = (b'B'..=b'I').map(|c| (c as char).to_string()).collect();
    let exec = proptest::sample::subsequence(activity_pool, 0..=8).prop_shuffle();
    proptest::collection::vec(exec, 1..=max_execs).prop_map(|execs| {
        let mut log = WorkflowLog::new();
        for middle in execs {
            let mut seq = vec!["A".to_string()];
            seq.extend(middle);
            seq.push("J".to_string());
            log.push_sequence(&seq).unwrap();
        }
        log
    })
}

/// Everything observable about one decode: the salvaged log flattened
/// to comparable pieces (or the rendered error), plus telemetry.
type Observed = (
    Result<(Vec<String>, Vec<Execution>), String>,
    CodecStats,
    IngestReport,
);

fn observe(
    result: Result<WorkflowLog, procmine::log::LogError>,
    stats: CodecStats,
    report: IngestReport,
) -> Observed {
    let flat = result
        .map(|log| (log.activities().names().to_vec(), log.executions().to_vec()))
        .map_err(|e| e.to_string());
    (flat, stats, report)
}

fn decode_new(data: &[u8], policy: RecoveryPolicy) -> Observed {
    let mut stats = CodecStats::default();
    let mut report = IngestReport::default();
    let result = xes::read_log_with(data, policy, &mut stats, &mut report);
    observe(result, stats, report)
}

fn decode_reference(data: &[u8], policy: RecoveryPolicy) -> Observed {
    let mut stats = CodecStats::default();
    let mut report = IngestReport::default();
    let result = xes_reference::read_log_with(data, policy, &mut stats, &mut report);
    observe(result, stats, report)
}

fn decode_parallel(data: &[u8], policy: RecoveryPolicy, threads: usize) -> Observed {
    let mut stats = CodecStats::default();
    let mut report = IngestReport::default();
    // min_bytes = 0 forces the chunked path even on small inputs.
    let result =
        xes::read_log_with_threads_min_bytes(data, policy, threads, 0, &mut stats, &mut report);
    observe(result, stats, report)
}

/// The corruption corpus of `tests/corruption.rs`: clean, truncated,
/// bit-rotted, and garbage-burst variants of one encoded log.
fn corpus(log: &WorkflowLog, cut: usize, flip_rate: f64, seed: u64) -> Vec<Vec<u8>> {
    let mut clean = Vec::new();
    xes::write_log(log, &mut clean).unwrap();
    let truncated = corrupt_bytes(&clean, &FaultConfig::truncated(cut.min(clean.len()) as u64));
    let flipped = corrupt_bytes(&clean, &FaultConfig::bit_flips(flip_rate, seed));
    let garbled = corrupt_bytes(
        &clean,
        &FaultConfig {
            seed,
            garbage_rate: 0.2,
            ..FaultConfig::default()
        },
    );
    vec![clean, truncated, flipped, garbled]
}

const POLICIES: [RecoveryPolicy; 3] = [
    RecoveryPolicy::Strict,
    RecoveryPolicy::Skip { max_errors: 4 },
    RecoveryPolicy::BestEffort,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The central pinning property: on every corpus variant and under
    /// every policy, the zero-copy parser is observationally identical
    /// to the reference parser — same log, same stats, same report
    /// (error byte offsets and line:column included via
    /// `IngestReport`'s `PartialEq`), same rendered error.
    #[test]
    fn new_parser_matches_reference_on_corrupt_corpus(
        log in arb_log(8),
        seed in 0u64..1_000,
        flips_per_mille in 0u64..50,
        cut in 0usize..2_048,
    ) {
        for corrupted in corpus(&log, cut, flips_per_mille as f64 / 1_000.0, seed) {
            for policy in POLICIES {
                prop_assert_eq!(
                    decode_new(&corrupted, policy),
                    decode_reference(&corrupted, policy),
                    "policy {:?}",
                    policy
                );
            }
        }
    }

    /// Chunked-parallel decode is indistinguishable from serial on the
    /// same corpus — including the corrupt variants, where the merge
    /// preconditions fail and the parallel path must fall back to a
    /// full serial re-parse with identical diagnostics.
    #[test]
    fn parallel_decode_matches_serial_on_corrupt_corpus(
        log in arb_log(8),
        seed in 0u64..1_000,
        flips_per_mille in 0u64..50,
        cut in 0usize..2_048,
        threads in 2usize..5,
    ) {
        for corrupted in corpus(&log, cut, flips_per_mille as f64 / 1_000.0, seed) {
            for policy in POLICIES {
                prop_assert_eq!(
                    decode_parallel(&corrupted, policy, threads),
                    decode_new(&corrupted, policy),
                    "policy {:?}, {} threads",
                    policy,
                    threads
                );
            }
        }
    }
}

/// Deterministic anchor for `ci.sh`-style quick runs: a hand-cut
/// truncation on a fixed log, checked against the reference under all
/// three policies.
#[test]
fn smoke_new_parser_matches_reference_on_truncated_log() {
    let log = WorkflowLog::from_strings([
        "ABCF", "ACDF", "ADEF", "AECF", "ABDF", "ACEF", "ABEF", "ADCF", "AEBF", "ABCF",
    ])
    .unwrap();
    let mut clean = Vec::new();
    xes::write_log(&log, &mut clean).unwrap();
    for cut in [clean.len() / 3, clean.len() / 2, clean.len() - 3] {
        let truncated = &clean[..cut];
        for policy in POLICIES {
            assert_eq!(
                decode_new(truncated, policy),
                decode_reference(truncated, policy),
                "cut {cut}, policy {policy:?}"
            );
            assert_eq!(
                decode_parallel(truncated, policy, 4),
                decode_new(truncated, policy),
                "cut {cut}, policy {policy:?}"
            );
        }
    }
}
