//! Streaming execution reader for Flowmark-style event logs.
//!
//! The paper's logs ran to 107 MB; materializing every execution before
//! mining is wasteful when the consumer is the incremental miner. This
//! reader yields one [`Execution`] at a time from a Flowmark-style
//! event stream, under the *contiguous cases* assumption that holds for
//! exported audit trails: all records of one process execution appear
//! consecutively (records within a case may still be out of time
//! order). A record for a new case id closes the previous case; a
//! record *reopening* a closed case id violates the assumption and is
//! surfaced as [`LogError::ReopenedCase`] (strict) or a report entry
//! (recovering) rather than silently splitting the case. Logs that
//! interleave cases freely belong in the interleaved assembler,
//! [`crate::stream::CaseAssembler`].
//!
//! Cases whose events do not pair up cleanly are reported as
//! [`LogError`]s inline in the iteration; the caller can skip them and
//! continue (the noise-tolerant route) or abort.

use crate::codec::flowmark;
use crate::codec::{ByteLines, CodecStats, IngestReport, RecoveryPolicy};
use crate::validate::{assemble_executions_with, locate_diagnostic, AssemblyPolicy};
use crate::{ActivityTable, EventRecord, Execution, LogError};
use std::collections::HashSet;
use std::io::BufRead;

/// Iterator over executions in a Flowmark-style event stream. Yields
/// `Ok(Execution)` per completed case, or `Err` for unparsable lines
/// and unpaired events (iteration can continue after an error).
///
/// Under a recovering [`RecoveryPolicy`] (see
/// [`ExecutionStream::with_policy`]), bad lines are counted into the
/// [`IngestReport`] and skipped instead of yielded, cases assemble
/// leniently, and a [`RecoveryPolicy::Skip`] budget overrun yields one
/// final [`LogError::TooManyErrors`] before the stream ends.
///
/// Bytes are counted as consumed, so [`stats`] reports real
/// byte/event/execution tallies as the stream is consumed — the same
/// [`CodecStats`] the batch codecs fill.
///
/// [`stats`]: ExecutionStream::stats
pub struct ExecutionStream<R: BufRead> {
    lines: ByteLines<R>,
    policy: RecoveryPolicy,
    table: ActivityTable,
    current: Vec<EventRecord>,
    /// `(byte_offset, line)` of each buffered record, for locating
    /// assembly diagnostics in the report.
    current_locs: Vec<(u64, usize)>,
    /// Case ids already flushed. A record reopening one of these means
    /// the contiguous-cases assumption is violated — the stream would
    /// silently split the case and corrupt follows counts, so it is
    /// surfaced instead (strict: [`LogError::ReopenedCase`];
    /// recovering: a report entry, and the split halves are salvaged).
    /// Grows O(#cases); interleaved logs belong in
    /// [`crate::stream::CaseAssembler`], which bounds memory properly.
    closed: HashSet<String>,
    /// An error queued behind a flushed execution (a case boundary can
    /// produce both at once).
    pending_err: Option<LogError>,
    stats: CodecStats,
    report: IngestReport,
    done: bool,
}

impl<R: BufRead> ExecutionStream<R> {
    /// Creates a strict stream over `reader`: every bad line or
    /// unpaired event is yielded as an `Err` item (iteration can
    /// continue past it), and a truncated final record surfaces as
    /// [`LogError::UnexpectedEof`] with its byte offset.
    pub fn new(reader: R) -> Self {
        Self::with_policy(reader, RecoveryPolicy::Strict)
    }

    /// Creates a stream with an explicit [`RecoveryPolicy`].
    pub fn with_policy(reader: R, policy: RecoveryPolicy) -> Self {
        ExecutionStream {
            lines: ByteLines::new(reader),
            policy,
            table: ActivityTable::new(),
            current: Vec::new(),
            current_locs: Vec::new(),
            closed: HashSet::new(),
            pending_err: None,
            stats: CodecStats::default(),
            report: IngestReport::default(),
            done: false,
        }
    }

    /// The activity table accumulated so far (grows as the stream is
    /// consumed; pass to consumers after iteration, or intern against a
    /// shared table in the consumer as `IncrementalMiner` does).
    pub fn activities(&self) -> &ActivityTable {
        &self.table
    }

    /// Byte/event/execution tallies so far. Bytes come straight from
    /// the line reader; events count parsed Flowmark records and
    /// executions count successfully assembled cases. Final totals are
    /// available once iteration ends.
    pub fn stats(&self) -> CodecStats {
        CodecStats {
            bytes_read: self.lines.bytes(),
            ..self.stats
        }
    }

    /// Records parsed/skipped and located errors so far; meaningful
    /// totals once iteration ends.
    pub fn report(&self) -> &IngestReport {
        &self.report
    }

    fn flush(&mut self) -> Option<Result<Execution, LogError>> {
        if self.current.is_empty() {
            return None;
        }
        let records = std::mem::take(&mut self.current);
        let locs = std::mem::take(&mut self.current_locs);
        self.closed.insert(records[0].process.clone());
        let assembly = if self.policy.is_strict() {
            AssemblyPolicy::Strict
        } else {
            AssemblyPolicy::Lenient
        };
        match assemble_executions_with(&records, &mut self.table, assembly) {
            Ok(assembled) => {
                self.report.records_skipped += assembled.diagnostics.len() as u64;
                for diag in &assembled.diagnostics {
                    let (byte_offset, line) = locate_diagnostic(&records, diag)
                        .map(|i| locs[i])
                        .unwrap_or_default();
                    self.report
                        .record_diagnostic(byte_offset, line, diag.to_string());
                }
                let exec = assembled.executions.into_iter().next();
                if exec.is_some() {
                    self.stats.executions_parsed += 1;
                }
                exec.map(Ok)
            }
            Err(e) => Some(Err(e)),
        }
    }
}

impl<R: BufRead> Iterator for ExecutionStream<R> {
    type Item = Result<Execution, LogError>;

    fn next(&mut self) -> Option<Self::Item> {
        if let Some(err) = self.pending_err.take() {
            return Some(Err(err));
        }
        if self.done {
            return self.flush();
        }
        loop {
            let (offset, lineno, had_newline) = match self.lines.read_next() {
                Ok(Some(next)) => next,
                Ok(None) => {
                    self.done = true;
                    return self.flush();
                }
                Err(e) => {
                    // A fatal I/O error ends the stream: retrying the
                    // reader forever would yield an unbounded Err
                    // stream. Strict mode discards the buffered case
                    // (the read failed, there is no clean result);
                    // recovering mode salvages it on the next call.
                    self.report
                        .record_error(self.lines.bytes(), 0, e.to_string());
                    self.done = true;
                    if self.policy.is_strict() {
                        self.current.clear();
                        self.current_locs.clear();
                    }
                    return Some(Err(e));
                }
            };
            let parsed = match std::str::from_utf8(self.lines.line()) {
                Ok(text) => {
                    let trimmed = text.trim();
                    if trimmed.is_empty() || trimmed.starts_with('#') {
                        continue;
                    }
                    flowmark::parse_event_line(trimmed, lineno)
                }
                Err(_) => Err(LogError::Parse {
                    line: lineno,
                    message: "line is not valid UTF-8".to_string(),
                }),
            };
            let record = match parsed {
                Ok(record) => record,
                Err(e) => {
                    // A bad final line with no newline is a truncated tail.
                    let err = if had_newline {
                        e
                    } else {
                        LogError::UnexpectedEof {
                            byte_offset: offset,
                            message: format!("input ends mid-record ({e})"),
                        }
                    };
                    self.report.record_error(offset, lineno, err.to_string());
                    if self.policy.is_strict() {
                        return Some(Err(err));
                    }
                    self.report.records_skipped += 1;
                    if let Err(give_up) = self.report.over_budget(self.policy) {
                        self.done = true;
                        self.current.clear();
                        return Some(Err(give_up));
                    }
                    continue;
                }
            };
            self.stats.events_parsed += 1;
            self.report.records_parsed += 1;
            let case_boundary = self
                .current
                .first()
                .is_some_and(|first| first.process != record.process);
            let opens_case = case_boundary || self.current.is_empty();
            if opens_case && self.closed.contains(&record.process) {
                let err = LogError::ReopenedCase {
                    execution: record.process.clone(),
                    line: lineno,
                };
                self.report.record_error(offset, lineno, err.to_string());
                if self.policy.is_strict() {
                    // Queued: a boundary flush may yield first.
                    self.pending_err = Some(err);
                } else if let Err(give_up) = self.report.over_budget(self.policy) {
                    self.done = true;
                    self.current.clear();
                    self.current_locs.clear();
                    return Some(Err(give_up));
                }
            }
            if case_boundary {
                let finished = self.flush();
                self.current.push(record);
                self.current_locs.push((offset, lineno));
                if finished.is_some() {
                    return finished;
                }
            } else {
                self.current.push(record);
                self.current_locs.push((offset, lineno));
            }
            if let Some(err) = self.pending_err.take() {
                return Some(Err(err));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
p1,A,START,0
p1,A,END,1
p1,B,START,2
p1,B,END,3
p2,A,START,0
p2,A,END,1
p3,C,START,5
p3,C,END,9
";

    #[test]
    fn yields_one_execution_per_contiguous_case() {
        let stream = ExecutionStream::new(SAMPLE.as_bytes());
        let execs: Vec<Execution> = stream.map(|r| r.unwrap()).collect();
        assert_eq!(execs.len(), 3);
        assert_eq!(execs[0].id, "p1");
        assert_eq!(execs[0].len(), 2);
        assert_eq!(execs[1].id, "p2");
        assert_eq!(execs[2].id, "p3");
        assert_eq!(execs[2].instances()[0].end, 9);
    }

    #[test]
    fn table_accumulates_across_cases() {
        let mut stream = ExecutionStream::new(SAMPLE.as_bytes());
        for r in stream.by_ref() {
            r.unwrap();
        }
        assert_eq!(stream.activities().len(), 3);
        assert!(stream.activities().id("C").is_some());
    }

    #[test]
    fn bad_case_reported_stream_continues() {
        let text = "\
p1,A,START,0
p2,B,START,0
p2,B,END,1
";
        let stream = ExecutionStream::new(text.as_bytes());
        let results: Vec<_> = stream.collect();
        assert_eq!(results.len(), 2);
        assert!(matches!(results[0], Err(LogError::UnmatchedStart { .. })));
        assert_eq!(results[1].as_ref().unwrap().id, "p2");
    }

    #[test]
    fn parse_error_carries_line_number() {
        let text = "p1,A,START,0\np1,A,END,1\nnot a record\n";
        let stream = ExecutionStream::new(text.as_bytes());
        let results: Vec<_> = stream.collect();
        assert!(results
            .iter()
            .any(|r| matches!(r, Err(LogError::Parse { line: 3, .. }))));
    }

    #[test]
    fn empty_input_yields_nothing() {
        let stream = ExecutionStream::new("".as_bytes());
        assert_eq!(stream.count(), 0);
    }

    #[test]
    fn stats_report_real_bytes_events_and_executions() {
        let mut stream = ExecutionStream::new(SAMPLE.as_bytes());
        for r in stream.by_ref() {
            r.unwrap();
        }
        let stats = stream.stats();
        assert_eq!(stats.bytes_read, SAMPLE.len() as u64);
        assert_eq!(stats.events_parsed, 8);
        assert_eq!(stats.executions_parsed, 3);
    }

    #[test]
    fn stats_skip_failed_cases_and_unparsable_lines() {
        let text = "\
p1,A,START,0
not a record
p2,B,START,0
p2,B,END,1
";
        let mut stream = ExecutionStream::new(text.as_bytes());
        let mut results = 0;
        for _ in stream.by_ref() {
            results += 1;
        }
        assert_eq!(results, 3); // parse error, unmatched p1, good p2
        let stats = stream.stats();
        assert_eq!(stats.bytes_read, text.len() as u64);
        assert_eq!(stats.events_parsed, 3, "the bad line is not an event");
        assert_eq!(stats.executions_parsed, 1, "only p2 assembles");
    }

    #[test]
    fn truncated_tail_yields_unexpected_eof_with_offset() {
        let text = "p1,A,START,0\np1,A,END,1\np2,B,STA"; // cut mid-record
        let stream = ExecutionStream::new(text.as_bytes());
        let results: Vec<_> = stream.collect();
        let offset = "p1,A,START,0\np1,A,END,1\n".len() as u64;
        assert!(
            results.iter().any(
                |r| matches!(r, Err(LogError::UnexpectedEof { byte_offset, .. }) if *byte_offset == offset)
            ),
            "{results:?}"
        );
    }

    #[test]
    fn recover_skips_bad_lines_and_counts_them() {
        let text = "\
p1,A,START,0
not a record
p1,A,END,1
p2,B,START,0
p2,B,END,1
";
        let mut stream = ExecutionStream::with_policy(text.as_bytes(), RecoveryPolicy::BestEffort);
        let execs: Vec<Execution> = stream.by_ref().map(|r| r.unwrap()).collect();
        assert_eq!(execs.len(), 2, "bad line skipped, both cases assemble");
        let report = stream.report();
        assert_eq!(report.records_parsed, 4);
        assert_eq!(report.records_skipped, 1);
        assert_eq!(report.errors_total, 1);
        assert_eq!(report.errors[0].line, 2);
    }

    #[test]
    fn recover_budget_overrun_ends_stream_with_error() {
        let text = "bad one\nbad two\nbad three\np1,A,START,0\np1,A,END,1\n";
        let stream =
            ExecutionStream::with_policy(text.as_bytes(), RecoveryPolicy::Skip { max_errors: 1 });
        let results: Vec<_> = stream.collect();
        assert!(matches!(
            results.last(),
            Some(Err(LogError::TooManyErrors {
                errors: 2,
                max_errors: 1
            }))
        ));
        assert_eq!(results.len(), 1, "stream ends after giving up");
    }

    #[test]
    fn recover_assembles_leniently() {
        // p1 has a dangling START; recover drops it instead of erroring.
        let text = "p1,A,START,0\np1,A,END,1\np1,B,START,2\np2,C,START,0\np2,C,END,1\n";
        let mut stream = ExecutionStream::with_policy(text.as_bytes(), RecoveryPolicy::BestEffort);
        let execs: Vec<Execution> = stream.by_ref().map(|r| r.unwrap()).collect();
        assert_eq!(execs.len(), 2);
        assert_eq!(execs[0].len(), 1, "dangling B dropped");
        assert_eq!(stream.report().records_skipped, 1);
    }

    #[test]
    fn io_error_terminates_stream() {
        use crate::fault::{FaultConfig, FaultReader};
        use std::io::BufReader;
        // One-shot fault after the first line; the reader would resume
        // afterwards, but the stream must stay terminated — the old
        // code never set `done`, so a failing reader yielded errors
        // forever.
        let text = "p1,A,START,0\np1,A,END,1\n";
        let reader = BufReader::new(FaultReader::new(
            text.as_bytes(),
            FaultConfig {
                io_error_at: Some(13),
                max_read: Some(13),
                ..FaultConfig::default()
            },
        ));
        let mut stream = ExecutionStream::new(reader);
        let results: Vec<_> = stream.by_ref().take(5).collect();
        assert_eq!(results.len(), 1, "stream ends after the fatal error");
        assert!(matches!(results[0], Err(LogError::Io(_))));
        assert_eq!(stream.report().errors_total, 1);
        assert!(stream.report().errors[0].message.contains("injected"));
    }

    #[test]
    fn io_error_salvages_buffered_case_when_recovering() {
        use crate::fault::{FaultConfig, FaultReader};
        use std::io::BufReader;
        let text = "p1,A,START,0\np1,A,END,1\np1,B,START,2\n";
        let reader = BufReader::new(FaultReader::new(
            text.as_bytes(),
            FaultConfig {
                io_error_at: Some(26),
                max_read: Some(13),
                ..FaultConfig::default()
            },
        ));
        let mut stream = ExecutionStream::with_policy(reader, RecoveryPolicy::BestEffort);
        let results: Vec<_> = stream.by_ref().take(5).collect();
        assert_eq!(results.len(), 2);
        assert!(matches!(results[0], Err(LogError::Io(_))));
        let exec = results[1].as_ref().unwrap();
        assert_eq!(exec.id, "p1");
        assert_eq!(exec.len(), 1, "the complete A instance survives");
    }

    #[test]
    fn flush_diagnostics_land_in_report_with_locations() {
        // p1's dangling START sits on line 3.
        let text = "p1,A,START,0\np1,A,END,1\np1,B,START,2\np2,C,START,0\np2,C,END,1\n";
        let mut stream = ExecutionStream::with_policy(text.as_bytes(), RecoveryPolicy::BestEffort);
        for r in stream.by_ref() {
            r.unwrap();
        }
        let report = stream.report();
        assert_eq!(report.records_skipped, 1);
        assert_eq!(report.errors.len(), 1, "diagnostic retained, not dropped");
        assert_eq!(report.errors[0].line, 3);
        assert_eq!(
            report.errors[0].byte_offset,
            "p1,A,START,0\np1,A,END,1\n".len() as u64
        );
        assert!(report.errors[0].message.contains("dropped START"));
        assert_eq!(report.errors_total, 0, "diagnostics are not decode errors");
    }

    #[test]
    fn reopened_case_surfaces_error_in_strict_mode() {
        let text = "\
p1,A,START,0
p1,A,END,1
p2,B,START,0
p2,B,END,1
p1,C,START,2
p1,C,END,3
";
        let stream = ExecutionStream::new(text.as_bytes());
        let results: Vec<_> = stream.collect();
        assert_eq!(results.len(), 4);
        assert_eq!(results[0].as_ref().unwrap().id, "p1");
        assert_eq!(results[1].as_ref().unwrap().id, "p2");
        assert!(
            matches!(
                &results[2],
                Err(LogError::ReopenedCase { execution, line: 5 }) if execution == "p1"
            ),
            "{results:?}"
        );
        // The split tail is still yielded so iteration can continue.
        assert_eq!(results[3].as_ref().unwrap().id, "p1");
    }

    #[test]
    fn reopened_case_reported_when_recovering() {
        let text = "\
p1,A,START,0
p1,A,END,1
p2,B,START,0
p2,B,END,1
p1,C,START,2
p1,C,END,3
";
        let mut stream = ExecutionStream::with_policy(text.as_bytes(), RecoveryPolicy::BestEffort);
        let execs: Vec<Execution> = stream.by_ref().map(|r| r.unwrap()).collect();
        assert_eq!(execs.len(), 3, "split halves are salvaged");
        let report = stream.report();
        assert_eq!(report.errors_total, 1);
        assert!(report.errors[0].message.contains("reappears"));
        assert_eq!(report.errors[0].line, 5);

        // The error still burns the Skip budget.
        let stream =
            ExecutionStream::with_policy(text.as_bytes(), RecoveryPolicy::Skip { max_errors: 0 });
        let results: Vec<_> = stream.collect();
        assert!(matches!(
            results.last(),
            Some(Err(LogError::TooManyErrors { .. }))
        ));
    }

    #[test]
    fn agrees_with_batch_reader() {
        let batch = flowmark::read_log(SAMPLE.as_bytes()).unwrap();
        let streamed: Vec<Execution> = ExecutionStream::new(SAMPLE.as_bytes())
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(batch.len(), streamed.len());
        for (a, b) in batch.executions().iter().zip(&streamed) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.len(), b.len());
        }
    }
}
