//! Command implementations: `generate`, `mine`, `check`, `conditions`,
//! `info`, `help`.

use crate::args::{parse, ArgError, Parsed};
use crate::metrics::{record_ingest, registry_from_args, write_metrics, write_metrics_atomic};
use crate::output::{errln, out, outln};
use procmine_classify::{ClassifyMetrics, TreeConfig};
use procmine_core::{
    conformance, mine_auto_in, mine_cyclic_in, mine_general_dag_in, mine_special_dag_in, Algorithm,
    ConformanceMetrics, MetricsSink, MineSession, MinedModel, MinerMetrics, MinerOptions, Registry,
    Tracer,
};
use procmine_log::codec::{CodecStats, IngestReport, RecoveryPolicy};
use procmine_log::{codec, WorkflowLog};
use procmine_sim::{engine, presets, randdag, walk, ProcessModel};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::error::Error;
use std::fs::File;
use std::io::{BufReader, BufWriter, Write};

type CliResult = Result<(), Box<dyn Error>>;

const USAGE: &str = "\
procmine — mine process models from workflow logs
(Agrawal, Gunopulos, Leymann; EDBT 1998)

USAGE:
  procmine <command> [options]

COMMANDS:
  generate    Generate a synthetic workflow log
      --preset NAME        graph10 | upload | stress | pend | swap | uwi | order
      --model FILE         load a process-model definition file instead
      --random-dag N       random DAG with N vertices instead of a preset
      --edge-prob P        edge probability for --random-dag (default 0.5)
      --executions M       number of executions (default 100)
      --seed S             RNG seed (default 42)
      --engine KIND        walk (§8.1 random walk, default) | conditions
                           (condition-driven engine with outputs)
      --agents N           concurrent agents for --engine conditions (default 1)
      --duration LO..HI    activity duration range for --engine conditions
      --format F           flowmark (default) | seqs | jsonl | xes
      -o / --out FILE      output file (default: stdout)

  mine        Mine a process model from a log
      <LOG>                input log file
      --format F           flowmark (default) | seqs | jsonl | xes
      --algorithm A        auto (default) | special | general | cyclic
      --threshold T        noise threshold (default 1)
      --dot FILE           write the mined graph as Graphviz DOT
      --graphml FILE       write the mined graph as GraphML (yEd/Gephi)
      --json FILE          write the mined model as JSON
      --bpmn FILE          write the mined model as BPMN 2.0 XML
      --check              verify conformance (Definition 7) after mining
      --stream             stream the log through the incremental miner
                           (flowmark format, contiguous cases; bad cases
                           are skipped with a warning)
      --follow             online mining over a live event stream
                           (flowmark format; cases may interleave).
                           <LOG> may be `-` for stdin; final model
                           prints in the same shape as batch mining
      --snapshot-every N   with --follow: print an interim model
                           summary to stderr every N absorbed events
      --max-open-cases N   with --follow: bound on concurrently open
                           cases before the least-recently-touched one
                           is evicted (default 1024; 0 = unbounded)
      --idle-ms MS         with --follow on a file: keep tailing the
                           file as it grows, giving up after MS of
                           inactivity (default 0: read to EOF once)
      --poll-ms MS         with --follow --idle-ms: poll interval while
                           tailing (default 50)
      --checkpoint FILE    with --follow on a file: save resumable
                           pipeline state (miner counts, open cases,
                           source position) to FILE atomically every
                           --checkpoint-every events and at end of
                           stream; if FILE already exists the session
                           resumes from it instead of re-reading the
                           log. Corrupt checkpoints are refused
                           (--recover discards them and cold-starts);
                           changed mining options always refuse
      --checkpoint-every N with --checkpoint: consumed events between
                           saves (default 500000)
      --io-retries N       with --follow on a file: transient read
                           errors are retried with exponential backoff
                           up to N times before failing (default 3)
      --threads N          mine with the parallel general miner on N
                           threads (requires --algorithm auto|general;
                           not combinable with --stream); with
                           --format xes the log is also decoded in
                           parallel chunks
      --stats              print pipeline telemetry (stage timings,
                           counters, codec byte/event tallies; with
                           --threads also per-stage wall time and
                           cpu/wall parallel efficiency)
      --stats-json FILE    write the same telemetry as JSON with a
                           stable key order
      --recover            skip undecodable records instead of aborting;
                           an ingest summary goes to stderr
      --max-errors N       like --recover but abort after N decode
                           errors
      --deadline-ms MS     abort mining if it exceeds MS milliseconds of
                           wall-clock time
      --trace FILE         write a Chrome Trace Event file of the run
                           (load in ui.perfetto.dev or chrome://tracing)
      --metrics FILE       write a metrics export at exit: Prometheus
                           text exposition for .prom/.txt, the
                           versioned JSON snapshot otherwise (stage
                           latency histograms, ingest rates; with
                           --follow also stream-health gauges)
      --metrics-every N    with --follow --metrics FILE: atomically
                           rewrite FILE every N consumed events, safe
                           to scrape mid-stream (works with `-` stdin)

  check       Check a mined model (JSON) against a log
      <MODEL.json> <LOG>
      --format F           log format (default flowmark)
      --recover            skip undecodable records instead of aborting
      --max-errors N       like --recover but abort after N decode errors
      --json               print the conformance report as JSON on
                           stdout (exit status still reflects the
                           verdict)
      --stats              print conformance telemetry (executions
                           checked, violations by variant, closure/SCC
                           time, codec tallies)
      --stats-json FILE    write the same telemetry as JSON
      --trace FILE         write a Chrome Trace Event file of the run
      --metrics FILE       write a metrics export at exit (format by
                           extension, as for mine)

  conditions  Mine a model and learn Boolean edge conditions (§7)
      <LOG>
      --format F           log format (default flowmark)
      --threshold T        noise threshold (default 1)
      --max-depth D        decision-tree depth limit (default 8)
      --recover            skip undecodable records instead of aborting
      --max-errors N       like --recover but abort after N decode errors
      --deadline-ms MS     abort mining if it exceeds MS milliseconds
      --stats              print miner and classifier telemetry (rows
                           extracted, splits evaluated, tree depth,
                           learn time)
      --stats-json FILE    write the same telemetry as JSON
      --trace FILE         write a Chrome Trace Event file of the run
      --metrics FILE       write a metrics export at exit (format by
                           extension, as for mine)

  report      Render a metrics export as a human-readable summary
      <SNAPSHOT>           a --metrics file (.prom/.txt: Prometheus
                           exposition; otherwise JSON snapshot)
      --trace FILE         join a Chrome Trace Event file into the
                           summary (spans aggregated per name)
      --validate           check the file instead of rendering it:
                           exposition must have HELP/TYPE per family
                           and no duplicate series; JSON must match
                           the procmine-metrics/v1 schema
      --prev FILE          with --validate: counters must be monotone
                           versus this earlier scrape

  info        Show log statistics
      <LOG>
      --format F           log format (default flowmark)

  convert     Convert a log between formats
      <IN> <OUT>
      --from F             input format (default: by file extension)
      --to F               output format (default: by file extension)

  help        Show this message

Log formats: flowmark (.fm/.csv), seqs (.seqs/.txt), jsonl (.jsonl),
xes (.xes). Where a format is defaulted from a file extension, unknown
extensions fall back to flowmark.
";

/// Entry point: dispatches on the first argument.
pub fn run(argv: &[String]) -> CliResult {
    match argv.first().map(String::as_str) {
        None | Some("help") | Some("--help") | Some("-h") => {
            out!("{USAGE}");
            Ok(())
        }
        Some("generate") => generate(&argv[1..]),
        Some("mine") => mine(&argv[1..]),
        Some("check") => check(&argv[1..]),
        Some("conditions") => conditions(&argv[1..]),
        Some("info") => info(&argv[1..]),
        Some("convert") => convert(&argv[1..]),
        Some("report") => crate::metrics::report(&argv[1..]),
        Some(other) => Err(format!("unknown command `{other}`; see `procmine help`").into()),
    }
}

/// Guesses a log format from a file extension; unknown extensions fall
/// back to flowmark.
fn format_from_extension(path: &str) -> &'static str {
    match std::path::Path::new(path)
        .extension()
        .and_then(|e| e.to_str())
        .map(str::to_ascii_lowercase)
        .as_deref()
    {
        Some("xes") => "xes",
        Some("jsonl") => "jsonl",
        Some("seqs") | Some("txt") => "seqs",
        _ => "flowmark",
    }
}

fn convert(argv: &[String]) -> CliResult {
    let p = parse(argv, &["from", "to"], &[])?;
    let [input, output] = p.positional() else {
        return Err(ArgError::Required("IN and OUT arguments").into());
    };
    let from = p
        .get("from")
        .unwrap_or_else(|| format_from_extension(input));
    let to = p.get("to").unwrap_or_else(|| format_from_extension(output));
    let log = read_log(input, from)?;
    write_log(&log, Some(output), to)?;
    errln!(
        "converted {} executions: {input} ({from}) -> {output} ({to})",
        log.len()
    );
    Ok(())
}

fn read_log(path: &str, format: &str) -> Result<WorkflowLog, Box<dyn Error>> {
    // An un-configured session supplies the no-op tracer and registry.
    let session = MineSession::new();
    read_log_with(
        path,
        format,
        RecoveryPolicy::Strict,
        &mut CodecStats::default(),
        &mut IngestReport::default(),
        session.tracer(),
        session.obs(),
        1,
    )
}

#[allow(clippy::too_many_arguments)]
fn read_log_with(
    path: &str,
    format: &str,
    policy: RecoveryPolicy,
    stats: &mut CodecStats,
    report: &mut IngestReport,
    tracer: &Tracer,
    reg: &Registry,
    threads: usize,
) -> Result<WorkflowLog, Box<dyn Error>> {
    // Span names are static, so map the format up front (codecs live in
    // `procmine-log`, which cannot depend on core — the ingest spans
    // and per-format metrics are recorded here at the CLI layer
    // instead).
    let span_name = match format {
        "flowmark" => "ingest.flowmark",
        "seqs" => "ingest.seqs",
        "jsonl" => "ingest.jsonl",
        "xes" => "ingest.xes",
        other => return Err(format!("unknown log format `{other}`").into()),
    };
    let _span = tracer.span_cat(span_name, "codec");
    let (bytes_before, events_before) = (stats.bytes_read, stats.events_parsed);
    let reg_started = reg.start();
    let reader = BufReader::new(File::open(path)?);
    let log = match format {
        "flowmark" => codec::flowmark::read_log_with(reader, policy, stats, report)?,
        "seqs" => codec::seqs::read_log_with(reader, policy, stats, report)?,
        "jsonl" => codec::jsonl::read_log_with(reader, policy, stats, report)?,
        // The XES decoder can split the document at trace boundaries
        // and parse chunks in parallel; the session's thread count is
        // threaded through here like the ingest spans.
        "xes" if threads > 1 => {
            codec::xes::read_log_with_threads(reader, policy, threads, stats, report)?
        }
        "xes" => codec::xes::read_log_with(reader, policy, stats, report)?,
        other => return Err(format!("unknown log format `{other}`").into()),
    };
    if reg.is_enabled() {
        record_ingest(
            reg,
            format,
            stats.bytes_read - bytes_before,
            stats.events_parsed - events_before,
        );
        reg.histogram(
            "procmine_ingest_duration_ns",
            "Wall-clock time spent decoding one input log, in nanoseconds.",
            &[("format", format)],
        )
        .observe_since(reg_started);
    }
    Ok(log)
}

/// The serial session implied by `--trace FILE` / `--metrics FILE`:
/// tracing enabled when the first flag is present, the caller's
/// registry handle (from [`registry_from_args`]) shared in either way.
/// Commands attach their metrics sink (and thread count) before
/// mining.
fn session_from_args(p: &Parsed, reg: &Registry) -> MineSession {
    let session = MineSession::new().with_obs(reg.clone());
    if p.get("trace").is_some() {
        session.with_tracer(Tracer::new())
    } else {
        session
    }
}

/// Writes the collected trace as a Chrome Trace Event file when
/// `--trace FILE` was given. Call after the traced work finishes (and
/// before any verdict-driven early return, so failing runs still leave
/// a trace behind).
fn write_trace(tracer: &Tracer, p: &Parsed) -> CliResult {
    if let Some(path) = p.get("trace") {
        let mut f = BufWriter::new(File::create(path)?);
        tracer.write_chrome_json(&mut f)?;
        f.flush()?;
        errln!("wrote {path}");
    }
    Ok(())
}

/// The recovery policy implied by `--recover` / `--max-errors N`:
/// `--max-errors` bounds the decode-error budget (and implies recovery
/// on its own); bare `--recover` skips without limit.
fn ingest_policy(p: &Parsed) -> Result<RecoveryPolicy, ArgError> {
    let max_errors: Option<u64> = match p.get("max-errors") {
        None => None,
        Some(v) => Some(v.parse().map_err(|_| ArgError::BadValue {
            flag: "max-errors".to_string(),
            value: v.to_string(),
            expected: "error budget (integer)",
        })?),
    };
    Ok(match (p.has("recover"), max_errors) {
        (_, Some(max_errors)) => RecoveryPolicy::Skip { max_errors },
        (true, None) => RecoveryPolicy::BestEffort,
        (false, None) => RecoveryPolicy::Strict,
    })
}

/// Summarizes a recovering ingest on stderr (silent under `Strict`,
/// where any decode error already aborted the command).
fn report_ingest(report: &IngestReport, policy: RecoveryPolicy) {
    if policy.is_strict() {
        return;
    }
    errln!(
        "ingest: {} records parsed, {} skipped, {} decode errors",
        report.records_parsed,
        report.records_skipped,
        report.errors_total
    );
    for e in &report.errors {
        errln!("  byte {} (line {}): {}", e.byte_offset, e.line, e.message);
    }
    // `errors` can exceed `errors_total` — located assembly diagnostics
    // are retained without counting as decode errors.
    let unrecorded = (report.errors_total as usize).saturating_sub(report.errors.len());
    if unrecorded > 0 {
        errln!("  ... {unrecorded} more not recorded");
    }
}

fn write_log(log: &WorkflowLog, out: Option<&str>, format: &str) -> CliResult {
    let mut sink: Box<dyn Write> = match out {
        Some(path) => Box::new(BufWriter::new(File::create(path)?)),
        None => Box::new(std::io::stdout().lock()),
    };
    match format {
        "flowmark" => codec::flowmark::write_log(log, &mut sink)?,
        "seqs" => codec::seqs::write_log(log, &mut sink)?,
        "jsonl" => codec::jsonl::write_log(log, &mut sink)?,
        "xes" => codec::xes::write_log(log, &mut sink)?,
        other => return Err(format!("unknown log format `{other}`").into()),
    }
    sink.flush()?;
    Ok(())
}

fn preset_model(name: &str) -> Result<ProcessModel, Box<dyn Error>> {
    Ok(match name {
        "graph10" => presets::graph10(),
        "upload" => presets::upload_and_notify(),
        "stress" => presets::stress_sleep(),
        "pend" => presets::pend_block(),
        "swap" => presets::local_swap(),
        "uwi" => presets::uwi_pilot(),
        "order" => presets::order_fulfillment(),
        other => return Err(format!("unknown preset `{other}`").into()),
    })
}

fn generate(argv: &[String]) -> CliResult {
    let p = parse(
        argv,
        &[
            "preset",
            "model",
            "random-dag",
            "edge-prob",
            "executions",
            "seed",
            "engine",
            "agents",
            "duration",
            "format",
            "out",
        ],
        &[],
    )?;
    let m: usize = p.get_parse("executions", 100, "integer")?;
    let seed: u64 = p.get_parse("seed", 42, "integer")?;
    let format = p.get("format").unwrap_or("flowmark");
    let mut rng = StdRng::seed_from_u64(seed);

    let source_flags = [
        p.get("preset").is_some(),
        p.get("model").is_some(),
        p.get("random-dag").is_some(),
    ];
    if source_flags.iter().filter(|&&f| f).count() > 1 {
        return Err("--preset, --model and --random-dag are mutually exclusive".into());
    }
    let model = if let Some(name) = p.get("preset") {
        preset_model(name)?
    } else if let Some(path) = p.get("model") {
        procmine_sim::textfmt::read_model(BufReader::new(File::open(path)?))?
    } else if let Some(n) = p.get("random-dag") {
        let vertices: usize = n
            .parse()
            .map_err(|_| format!("--random-dag: `{n}` is not a vertex count"))?;
        let edge_prob: f64 = p.get_parse("edge-prob", 0.5, "probability")?;
        randdag::random_dag(
            &randdag::RandomDagConfig {
                vertices,
                edge_prob,
            },
            &mut rng,
        )?
    } else {
        presets::graph10()
    };

    let log = match p.get("engine").unwrap_or("walk") {
        "walk" => walk::random_walk_log(&model, m, &mut rng)?,
        "conditions" => {
            let agents: usize = p.get_parse("agents", 1, "integer")?;
            let duration = match p.get("duration") {
                None => engine::DurationSpec::Instant,
                Some(range) => {
                    let (lo, hi) = range
                        .split_once("..")
                        .ok_or_else(|| format!("--duration: `{range}` needs LO..HI"))?;
                    engine::DurationSpec::Uniform(
                        lo.parse()
                            .map_err(|_| format!("bad duration bound `{lo}`"))?,
                        hi.parse()
                            .map_err(|_| format!("bad duration bound `{hi}`"))?,
                    )
                }
            };
            let cfg = engine::EngineConfig { duration, agents };
            engine::generate_log_with(&model, m, &cfg, &mut rng)?
        }
        other => return Err(format!("unknown engine `{other}`").into()),
    };
    errln!(
        "generated {} executions of `{}` ({} activities, {} edges)",
        log.len(),
        model.name(),
        model.activity_count(),
        model.edge_count()
    );
    write_log(&log, p.get("out"), format)
}

/// Miner options from the shared `--threshold` / `--deadline-ms` flags.
fn miner_options(p: &Parsed) -> Result<MinerOptions, ArgError> {
    let mut opts = MinerOptions::with_threshold(p.get_parse("threshold", 1, "integer")?);
    let deadline_ms: u64 = p.get_parse("deadline-ms", 0, "integer")?;
    if deadline_ms > 0 {
        opts.limits.deadline = Some(std::time::Duration::from_millis(deadline_ms));
    }
    Ok(opts)
}

fn mine_with<S: MetricsSink>(
    p: &Parsed,
    session: &mut MineSession<S>,
    log: &WorkflowLog,
) -> Result<(MinedModel, Algorithm), Box<dyn Error>> {
    let opts = miner_options(p)?;
    // `--threads N` was validated and folded into the session by the
    // command; re-read the flag only to reject incompatible algorithms.
    let threads: usize = p.get_parse("threads", 0, "integer")?;
    if threads > 0 {
        return match p.get("algorithm").unwrap_or("auto") {
            "auto" | "general" => Ok((
                mine_general_dag_in(session, log, &opts)?,
                Algorithm::GeneralDag,
            )),
            other => Err(
                format!("--threads requires the general miner (got --algorithm {other})").into(),
            ),
        };
    }
    Ok(match p.get("algorithm").unwrap_or("auto") {
        "auto" => mine_auto_in(session, log, &opts)?,
        "special" => (
            mine_special_dag_in(session, log, &opts)?,
            Algorithm::SpecialDag,
        ),
        "general" => (
            mine_general_dag_in(session, log, &opts)?,
            Algorithm::GeneralDag,
        ),
        "cyclic" => (mine_cyclic_in(session, log, &opts)?, Algorithm::Cyclic),
        other => return Err(format!("unknown algorithm `{other}`").into()),
    })
}

/// Streams a flowmark log through the incremental miner, skipping bad
/// cases with a warning. Returns the model and the log (re-read in
/// batch form for the conformance/gateway reporting). The stream's
/// byte/event/execution tallies are merged into `codec_stats` and its
/// decode-error accounting into `ingest`. Under a recovering `policy`
/// the stream itself skips bad lines; under `Strict` a decode error
/// aborts the whole command (the historical `--stream` behaviour of
/// warning and continuing applies only to *assembly* rejections, which
/// the miner reports per case).
fn mine_streaming<S: MetricsSink>(
    path: &str,
    options: MinerOptions,
    policy: RecoveryPolicy,
    session: &mut MineSession<S>,
    codec_stats: &mut CodecStats,
    ingest: &mut IngestReport,
) -> Result<(MinedModel, WorkflowLog), Box<dyn Error>> {
    use procmine_log::codec::stream::ExecutionStream;
    let tracer = session.tracer().clone();
    let stream_span = tracer.span_cat("stream.ingest", "codec");
    let mut miner = procmine_core::IncrementalMiner::new(options);
    let mut stream = ExecutionStream::with_policy(BufReader::new(File::open(path)?), policy);
    let mut skipped = 0usize;
    let mut kept = WorkflowLog::new();
    while let Some(result) = stream.next() {
        match result {
            Ok(exec) => {
                let table = stream.activities().clone();
                match miner.absorb_execution(&exec, &table) {
                    Ok(()) => {
                        let names: Vec<String> = exec
                            .sequence()
                            .iter()
                            .map(|&a| table.name(a).to_string())
                            .collect();
                        kept.push_sequence(&names)?;
                    }
                    Err(e) => {
                        errln!("warning: skipping case `{}`: {e}", exec.id);
                        skipped += 1;
                    }
                }
            }
            Err(e) if policy.is_strict() => {
                codec_stats.merge(&stream.stats());
                ingest.merge(stream.report());
                return Err(e.into());
            }
            Err(e) => {
                errln!("warning: skipping unparsable case: {e}");
                skipped += 1;
            }
        }
    }
    if skipped > 0 {
        errln!("streamed with {skipped} case(s) skipped");
    }
    codec_stats.merge(&stream.stats());
    ingest.merge(stream.report());
    drop(stream_span);
    let model = miner.model_in(session)?;
    Ok((model, kept))
}

/// Writes the `--dot` / `--graphml` / `--json` model artifacts shared
/// by batch and follow mining (`--bpmn` needs the materialized log and
/// stays batch-only).
fn write_model_artifacts(p: &Parsed, model: &MinedModel) -> CliResult {
    if let Some(dot_path) = p.get("dot") {
        std::fs::write(dot_path, model.to_dot("mined"))?;
        errln!("wrote {dot_path}");
    }
    if let Some(graphml_path) = p.get("graphml") {
        let support: std::collections::HashMap<(usize, usize), u32> = model
            .edge_support()
            .iter()
            .map(|&(u, v, c)| ((u, v), c))
            .collect();
        let xml = procmine_graph::graphml::to_graphml_with(
            model.graph(),
            "mined_process",
            |_, name| name.clone(),
            |u, v| support.get(&(u.index(), v.index())).map(|&c| f64::from(c)),
        );
        std::fs::write(graphml_path, xml)?;
        errln!("wrote {graphml_path}");
    }
    if let Some(json_path) = p.get("json") {
        let f = BufWriter::new(File::create(json_path)?);
        serde_json::to_writer_pretty(f, model)?;
        errln!("wrote {json_path}");
    }
    Ok(())
}

/// Prints the tracer's dropped-span count under `--stats` — silence
/// here would read as "the trace is complete" when the ring buffer
/// wrapped.
fn report_dropped_spans(tracer: &Tracer) {
    if tracer.dropped_spans() > 0 {
        outln!(
            "trace: {} span(s) dropped at capacity (raise the tracer buffer or trace less)",
            tracer.dropped_spans()
        );
    }
}

/// The `"trace":{"dropped_spans":N}` fragment every `--stats-json`
/// report carries (0 when tracing is disabled).
fn trace_json_fragment(tracer: &Tracer) -> String {
    format!("\"trace\":{{\"dropped_spans\":{}}}", tracer.dropped_spans())
}

/// The `--stats` / `--stats-json` telemetry reporting shared by batch
/// and follow mining (same shape and key order for both paths).
fn report_mine_stats(
    p: &Parsed,
    codec_stats: &CodecStats,
    ingest: &IngestReport,
    metrics: &MinerMetrics,
    tracer: &Tracer,
) -> CliResult {
    if p.has("stats") {
        outln!(
            "codec: {} bytes read, {} events parsed, {} executions parsed",
            codec_stats.bytes_read,
            codec_stats.events_parsed,
            codec_stats.executions_parsed
        );
        out!("{}", metrics.render_table());
        report_dropped_spans(tracer);
    }
    if let Some(stats_path) = p.get("stats-json") {
        let mut out = String::from("{\"codec\":");
        out.push_str(&codec_stats.to_json());
        out.push_str(",\"ingest\":");
        out.push_str(&ingest.to_json());
        out.push(',');
        metrics.write_json_fields(&mut out);
        out.push(',');
        out.push_str(&trace_json_fragment(tracer));
        out.push('}');
        out.push('\n');
        std::fs::write(stats_path, out)?;
        errln!("wrote {stats_path}");
    }
    Ok(())
}

/// The consumer end of a `mine --follow` pipeline: absorbs completed
/// executions into the online miner, printing interim snapshots per
/// the `--snapshot-every` cadence. A named struct (not a closure) so
/// the pump loop can reach the miner *between* events through
/// [`CaseAssembler::observer`] — that is where checkpoint saves hook
/// in.
struct FollowDriver<'a, S: MetricsSink> {
    miner: &'a mut procmine_core::OnlineMiner,
    session: &'a mut MineSession<S>,
    skipped: &'a mut usize,
}

impl<S: MetricsSink> procmine_log::stream::Observer for FollowDriver<'_, S> {
    fn on_execution(
        &mut self,
        exec: &procmine_log::Execution,
        table: &procmine_log::ActivityTable,
    ) -> Result<(), procmine_log::stream::StreamError> {
        use procmine_log::stream::StreamError;
        match self.miner.absorb(exec, table) {
            Ok(false) => Ok(()),
            Ok(true) => {
                let snap = self
                    .miner
                    .snapshot_in(self.session)
                    .map_err(|e| StreamError::Sink(Box::new(e)))?;
                errln!(
                    "snapshot @ {} events: {} activities, {} edges ({} executions)",
                    self.miner.events_absorbed(),
                    snap.activity_count(),
                    snap.edge_count(),
                    self.miner.executions()
                );
                Ok(())
            }
            Err(e) => {
                errln!("warning: skipping case `{}`: {e}", exec.id);
                *self.skipped += 1;
                Ok(())
            }
        }
    }
}

/// State restored from a `--checkpoint` file: the resumed miner, the
/// assembler state to rebuild around a fresh observer, and the source
/// position/accounting to continue from.
type ResumeState = (
    procmine_core::OnlineMiner,
    procmine_log::stream::AssemblerState,
    procmine_core::SourceState,
);

/// Attempts to resume a follow session from `ck_path`. Returns
/// `Ok(None)` for a cold start — the file does not exist, or it is
/// corrupt and `recovering` allows discarding it. Version skew and an
/// options-fingerprint mismatch always refuse: the first is a
/// different build's format, the second would silently mix counts
/// accumulated under different mining semantics.
fn load_follow_checkpoint(
    ck_path: &str,
    log_path: &str,
    fingerprint: &procmine_core::OptionsFingerprint,
    options: &MinerOptions,
    snap_policy: procmine_core::SnapshotPolicy,
    config: procmine_log::stream::AssemblerConfig,
    recovering: bool,
) -> Result<Option<ResumeState>, Box<dyn Error>> {
    use procmine_core::{FollowCheckpoint, OnlineMiner};
    use procmine_log::stream::{CaseAssembler, CheckpointError, StreamError};
    use procmine_log::{ActivityTable, Execution};

    if !std::path::Path::new(ck_path).exists() {
        return Ok(None);
    }
    let degrade = |why: String| -> Result<Option<ResumeState>, Box<dyn Error>> {
        if recovering {
            errln!("warning: {why}; cold-starting (the checkpoint will be overwritten)");
            Ok(None)
        } else {
            Err(format!(
                "{why} (rerun with --recover to discard the checkpoint and cold-start, \
                 or delete the file)"
            )
            .into())
        }
    };
    let ck = match FollowCheckpoint::load(std::path::Path::new(ck_path)) {
        Ok(ck) => ck,
        Err(e @ CheckpointError::VersionSkew { .. }) => {
            return Err(format!(
                "cannot resume from `{ck_path}`: {e} (written by a different build; \
                 delete the file to start over)"
            )
            .into())
        }
        Err(e) => return degrade(format!("cannot resume from `{ck_path}`: {e}")),
    };
    if let Some(diff) = fingerprint.mismatch(&ck.fingerprint) {
        return Err(format!(
            "cannot resume from `{ck_path}`: options changed — {diff}; rerun with the \
             checkpoint's options, or delete the file to remine under the new ones"
        )
        .into());
    }
    let current_len = std::fs::metadata(log_path)?.len();
    if current_len < ck.source.source_len {
        return degrade(format!(
            "cannot resume from `{ck_path}`: log `{log_path}` shrank from {} to \
             {current_len} bytes since the checkpoint (truncated or rotated)",
            ck.source.source_len
        ));
    }
    let miner = match OnlineMiner::from_state(options.clone(), snap_policy, ck.miner) {
        Ok(m) => m,
        Err(e) => return degrade(format!("cannot resume from `{ck_path}`: {e}")),
    };
    // Dry-run the assembler restore so structural corruption in its
    // half of the payload also degrades here, before the pipeline is
    // wired up.
    let probe = |_: &Execution, _: &ActivityTable| Ok::<(), StreamError>(());
    if let Err(e) = CaseAssembler::resume(config, probe, ck.assembler.clone()) {
        return degrade(format!("cannot resume from `{ck_path}`: {e}"));
    }
    Ok(Some((miner, ck.assembler, ck.source)))
}

/// Saves the full pipeline state to `ck_path` atomically. `base` is
/// the source-side accounting carried over from the checkpoint this
/// session resumed from (zeroed on a cold start); the session's own
/// tallies are merged on top so the saved state is cumulative over the
/// whole stream.
#[allow(clippy::too_many_arguments)]
fn save_follow_checkpoint(
    ck_path: &str,
    log_path: &str,
    fingerprint: procmine_core::OptionsFingerprint,
    miner: &procmine_core::OnlineMiner,
    assembler_state: procmine_log::stream::AssemblerState,
    position: (u64, usize),
    base: &procmine_core::SourceState,
    session_stats: &CodecStats,
    session_report: &IngestReport,
) -> CliResult {
    let mut stats = base.stats;
    stats.merge(session_stats);
    let mut report = base.report.clone();
    report.merge(session_report);
    let ck = procmine_core::FollowCheckpoint {
        fingerprint,
        miner: miner.export_state(),
        assembler: assembler_state,
        source: procmine_core::SourceState {
            byte_offset: position.0,
            line: position.1 as u64,
            // The file can only have grown since the bytes at
            // `position` were read; clamp defensively so the invariant
            // `source_len >= byte_offset` holds even mid-rotation.
            source_len: std::fs::metadata(log_path)?.len().max(position.0),
            stats,
            report,
        },
    };
    ck.save(std::path::Path::new(ck_path))?;
    Ok(())
}

/// Live-following health state sampled into the registry right before
/// each metrics export (cadenced and final). Totals accumulated
/// outside the registry (evictions, tail supervision) are synced into
/// their counters by delta so scrape-over-scrape values stay monotone.
struct FollowHealth<'a> {
    open_cases: usize,
    max_open_cases: usize,
    cases_evicted: u64,
    events_absorbed: u64,
    snapshots_taken: u64,
    snapshot_age_events: u64,
    checkpoint_age_events: Option<u64>,
    tail: Option<&'a procmine_log::stream::TailStats>,
    elapsed: std::time::Duration,
    events_total: u64,
}

fn update_follow_health(reg: &Registry, h: &FollowHealth<'_>) {
    if !reg.is_enabled() {
        return;
    }
    let sync = |name: &'static str, help: &'static str, total: u64| {
        let c = reg.counter(name, help, &[]);
        c.add(total.saturating_sub(c.value()));
    };
    reg.gauge(
        "procmine_follow_open_cases",
        "Concurrently open (incomplete) cases in the assembler window.",
        &[],
    )
    .set_u64(h.open_cases as u64);
    reg.gauge(
        "procmine_follow_open_cases_limit",
        "The --max-open-cases bound (0: unbounded).",
        &[],
    )
    .set_u64(h.max_open_cases as u64);
    reg.gauge(
        "procmine_follow_events_per_second",
        "Consumed events per wall-clock second since the session started.",
        &[],
    )
    .set(h.events_total as f64 / h.elapsed.as_secs_f64().max(1e-9));
    reg.gauge(
        "procmine_follow_snapshot_age_events",
        "Absorbed events since the last interim model snapshot.",
        &[],
    )
    .set_u64(h.snapshot_age_events);
    sync(
        "procmine_follow_cases_evicted_total",
        "Incomplete open cases evicted by the --max-open-cases window.",
        h.cases_evicted,
    );
    sync(
        "procmine_follow_events_absorbed_total",
        "Events absorbed into the online miner (completed cases only).",
        h.events_absorbed,
    );
    sync(
        "procmine_follow_snapshots_total",
        "Interim model snapshots taken.",
        h.snapshots_taken,
    );
    if let Some(age) = h.checkpoint_age_events {
        reg.gauge(
            "procmine_checkpoint_age_events",
            "Consumed events since the last checkpoint save.",
            &[],
        )
        .set_u64(age);
    }
    if let Some(tail) = h.tail {
        sync(
            "procmine_tail_retries_total",
            "Transient read errors retried by the supervised tail reader.",
            tail.retries(),
        );
        sync(
            "procmine_tail_backoff_ns_total",
            "Nanoseconds slept in tail-retry exponential backoff.",
            tail.backoff_ns(),
        );
        sync(
            "procmine_tail_empty_polls_total",
            "Empty tail polls (EOF-for-now) observed while following.",
            tail.empty_polls(),
        );
    }
}

/// `mine --follow`: online mining over a live event stream. `<LOG>` may
/// be `-` for stdin (read until EOF — the pipe case) or a file, which
/// with `--idle-ms` is tailed as it grows. Events flow through the
/// interleaved case assembler (bounded by `--max-open-cases`) into the
/// online miner; `--snapshot-every N` prints an interim model summary
/// to stderr every N absorbed events, and the final model prints to
/// stdout in the same shape as batch mining so outputs diff cleanly.
///
/// With `--checkpoint FILE` the pipeline persists its full resumable
/// state (miner counts, open cases, source position) every
/// `--checkpoint-every` consumed events and at end of stream; a later
/// run with the same flag resumes from the file instead of re-reading
/// the log. File reads are supervised: transient I/O errors retry with
/// exponential backoff (`--io-retries`), and a log that shrinks under
/// the follow surfaces as a located truncation error.
fn mine_follow(p: &Parsed) -> CliResult {
    use procmine_core::{OnlineMiner, OptionsFingerprint, SnapshotPolicy, SourceState};
    use procmine_log::stream::{
        AssemblerConfig, CaseAssembler, FlowmarkSource, RetryPolicy, StreamSink, TailReader,
    };
    use procmine_log::validate::AssemblyPolicy;
    use std::io::Seek;

    let path = p
        .positional()
        .first()
        .ok_or(ArgError::Required("log file (or - for stdin)"))?;
    if p.has("stream") {
        return Err("--follow already streams; drop --stream".into());
    }
    if p.has("check") || p.get("bpmn").is_some() {
        return Err("--check/--bpmn need a materialized log and cannot follow a stream".into());
    }
    if p.get("threads").is_some() {
        return Err("--threads cannot be combined with --follow".into());
    }
    if p.get("format").is_some_and(|f| f != "flowmark") {
        return Err("--follow supports the flowmark format only".into());
    }
    match p.get("algorithm").unwrap_or("auto") {
        "auto" | "general" => {}
        other => {
            return Err(format!(
                "--follow uses the incremental general miner (got --algorithm {other})"
            )
            .into())
        }
    }

    let policy = ingest_policy(p)?;
    let snapshot_every: u64 = p.get_parse("snapshot-every", 0, "integer")?;
    let max_open_cases: usize = p.get_parse(
        "max-open-cases",
        procmine_log::stream::DEFAULT_OPEN_CASE_WINDOW,
        "integer",
    )?;
    let poll_ms: u64 = p.get_parse("poll-ms", 50, "integer")?;
    let idle_ms: u64 = p.get_parse("idle-ms", 0, "integer")?;
    let io_retries: u32 = p.get_parse("io-retries", 3, "integer")?;
    let checkpoint_path = p.get("checkpoint");
    let checkpoint_every: u64 = p.get_parse(
        "checkpoint-every",
        procmine_core::DEFAULT_CHECKPOINT_EVERY,
        "integer",
    )?;
    if checkpoint_path.is_none() && p.get("checkpoint-every").is_some() {
        return Err("--checkpoint-every requires --checkpoint".into());
    }
    if checkpoint_path.is_some() && *path == "-" {
        return Err("--checkpoint requires a file log (stdin has no resumable position)".into());
    }
    // Unlike --checkpoint, --metrics-every works with `-` stdin: the
    // export describes the session, not a resumable source position.
    let metrics_path = p.get("metrics");
    let metrics_every: u64 = p.get_parse("metrics-every", 0, "integer")?;
    if metrics_every > 0 && metrics_path.is_none() {
        return Err("--metrics-every requires --metrics FILE".into());
    }

    let options = miner_options(p)?;
    let snap_policy = if snapshot_every > 0 {
        SnapshotPolicy::every(snapshot_every)
    } else {
        SnapshotPolicy::on_demand()
    };
    let config = AssemblerConfig {
        max_open_cases,
        assembly: if policy.is_strict() {
            AssemblyPolicy::Strict
        } else {
            AssemblyPolicy::Lenient
        },
    };
    let fingerprint = OptionsFingerprint {
        noise_threshold: options.noise_threshold,
        max_open_cases: max_open_cases as u64,
        strict_assembly: policy.is_strict(),
    };

    // Resume decision — before the reader is even opened, so a refusal
    // costs nothing and a resume seeks straight to the saved offset.
    let resumed = match checkpoint_path {
        Some(ck_path) => load_follow_checkpoint(
            ck_path,
            path,
            &fingerprint,
            &options,
            snap_policy,
            config,
            !policy.is_strict(),
        )?,
        None => None,
    };
    let (mut miner, assembler_state, base_source) = match resumed {
        Some((miner, assembler, source)) => {
            errln!(
                "resuming from checkpoint @ byte {} ({} executions mined, {} open cases)",
                source.byte_offset,
                miner.executions(),
                assembler.open.len()
            );
            (miner, Some(assembler), source)
        }
        None => (
            OnlineMiner::new(options, snap_policy),
            None,
            SourceState::default(),
        ),
    };
    let start_offset = base_source.byte_offset;
    let start_line = base_source.line as usize;

    let reg = registry_from_args(p);
    let base = session_from_args(p, &reg);
    let tracer = base.tracer().clone();
    let mut metrics = MinerMetrics::new();
    let mut session = base.with_sink(&mut metrics);
    let started = std::time::Instant::now();

    let mut tail_stats = None;
    let reader: Box<dyn std::io::BufRead> = if *path == "-" {
        Box::new(std::io::stdin().lock())
    } else {
        // Files are always wrapped in the supervised tail reader: with
        // --idle-ms 0 the idle budget is zero (EOF stays immediate),
        // but transient-error retry and truncation detection still
        // protect the session.
        let mut f = File::open(path)?;
        if start_offset > 0 {
            f.seek(std::io::SeekFrom::Start(start_offset))?;
        }
        let tail = TailReader::new(
            f,
            std::time::Duration::from_millis(poll_ms.max(1)),
            Some(std::time::Duration::from_millis(idle_ms)),
        )
        .with_retry(RetryPolicy::with_retries(io_retries))
        .watching(path.as_str(), start_offset);
        tail_stats = Some(tail.stats());
        Box::new(BufReader::new(tail))
    };

    let mut skipped = 0usize;
    let follow_span = tracer.span_cat("stream.follow", "codec");
    let mut source = FlowmarkSource::with_origin(reader, policy, start_offset, start_line);
    let driver = FollowDriver {
        miner: &mut miner,
        session: &mut session,
        skipped: &mut skipped,
    };
    let mut assembler = match assembler_state {
        Some(state) => CaseAssembler::resume(config, driver, state)?,
        None => CaseAssembler::new(config, driver),
    };

    // Manual pump (rather than `source.pump`) so checkpoint saves can
    // run between events, where miner counts, open cases, and the
    // source position are mutually consistent. The cadence counts
    // *consumed* events — open cases included — not absorbed
    // executions: an assembler window that never overflows delivers
    // executions only at the final flush, which would mean no
    // mid-stream saves at all.
    let cadence = checkpoint_every.max(1);
    let mut events_since_save: u64 = 0;
    let mut events_total: u64 = 0;
    let mut events_since_export: u64 = 0;
    // (snapshots_taken, events_absorbed at that point) — tracks the
    // snapshot-age gauge across exports.
    let mut snap_seen = (0u64, 0u64);
    let follow_events = reg.counter(
        "procmine_follow_events_total",
        "Events consumed from the live stream (open cases included).",
        &[],
    );
    let ck_write_ns = reg.histogram(
        "procmine_checkpoint_write_duration_ns",
        "Wall-clock duration of one atomic checkpoint save, in nanoseconds.",
        &[],
    );
    let ck_writes = reg.counter(
        "procmine_checkpoint_writes_total",
        "Atomic checkpoint saves performed.",
        &[],
    );
    let pumped = (|| -> Result<(), Box<dyn Error>> {
        while let Some((event, at)) = source.next_event()? {
            assembler.on_event(event, at)?;
            follow_events.inc();
            events_total += 1;
            if let Some(ck_path) = checkpoint_path {
                events_since_save += 1;
                if events_since_save >= cadence {
                    let ck_started = reg.start();
                    save_follow_checkpoint(
                        ck_path,
                        path,
                        fingerprint,
                        assembler.observer().miner,
                        assembler.export_state(),
                        source.position(),
                        &base_source,
                        &source.stats(),
                        source.report(),
                    )?;
                    if ck_started.is_some() {
                        ck_write_ns.observe_since(ck_started);
                        ck_writes.inc();
                    }
                    errln!("checkpoint @ byte {} -> {ck_path}", source.position().0);
                    events_since_save = 0;
                }
            }
            if metrics_every > 0 {
                events_since_export += 1;
                if events_since_export >= metrics_every {
                    if let Some(mp) = metrics_path {
                        let miner = &*assembler.observer().miner;
                        let (taken, absorbed) = (miner.snapshots_taken(), miner.events_absorbed());
                        if taken > snap_seen.0 {
                            snap_seen = (taken, absorbed);
                        }
                        update_follow_health(
                            &reg,
                            &FollowHealth {
                                open_cases: assembler.open_cases(),
                                max_open_cases,
                                cases_evicted: assembler.report().cases_evicted,
                                events_absorbed: absorbed,
                                snapshots_taken: taken,
                                snapshot_age_events: absorbed - snap_seen.1,
                                checkpoint_age_events: checkpoint_path
                                    .is_some()
                                    .then_some(events_since_save),
                                tail: tail_stats.as_deref(),
                                elapsed: started.elapsed(),
                                events_total,
                            },
                        );
                        write_metrics_atomic(&reg, mp)?;
                    }
                    events_since_export = 0;
                }
            }
        }
        assembler.finish()?;
        // A final save after the flush: a clean-exit resume continues
        // with the full counts. Cases that were still open here were
        // assembled by the flush, so a case spanning this boundary
        // opens fresh on resume (same split the memory bound forces).
        if let Some(ck_path) = checkpoint_path {
            let ck_started = reg.start();
            save_follow_checkpoint(
                ck_path,
                path,
                fingerprint,
                assembler.observer().miner,
                assembler.export_state(),
                source.position(),
                &base_source,
                &source.stats(),
                source.report(),
            )?;
            if ck_started.is_some() {
                ck_write_ns.observe_since(ck_started);
                ck_writes.inc();
            }
            errln!(
                "checkpoint @ {} events -> {ck_path} (end of stream)",
                assembler.observer().miner.events_absorbed()
            );
        }
        Ok(())
    })();
    let mut codec_stats = base_source.stats;
    codec_stats.merge(&source.stats());
    let mut ingest = base_source.report.clone();
    ingest.merge(source.report());
    ingest.merge(assembler.report());
    codec_stats.executions_parsed = assembler.executions_emitted();
    // Final health refresh so the exit export reflects the end state.
    if reg.is_enabled() {
        let miner = &*assembler.observer().miner;
        let (taken, absorbed) = (miner.snapshots_taken(), miner.events_absorbed());
        if taken > snap_seen.0 {
            snap_seen = (taken, absorbed);
        }
        update_follow_health(
            &reg,
            &FollowHealth {
                open_cases: assembler.open_cases(),
                max_open_cases,
                cases_evicted: ingest.cases_evicted,
                events_absorbed: absorbed,
                snapshots_taken: taken,
                snapshot_age_events: absorbed - snap_seen.1,
                checkpoint_age_events: checkpoint_path.is_some().then_some(events_since_save),
                tail: tail_stats.as_deref(),
                elapsed: started.elapsed(),
                events_total,
            },
        );
    }
    drop(assembler);
    drop(follow_span);
    if let Err(e) = pumped {
        report_ingest(&ingest, policy);
        return Err(e);
    }
    if skipped > 0 {
        errln!("followed with {skipped} case(s) skipped");
    }
    if ingest.cases_evicted > 0 {
        errln!(
            "warning: {} incomplete open case(s) evicted by the --max-open-cases {} window",
            ingest.cases_evicted,
            max_open_cases
        );
    }

    let executions = miner.executions();
    let model = miner.snapshot_in(&mut session)?;
    drop(session);
    report_ingest(&ingest, policy);
    let elapsed = started.elapsed();

    outln!(
        "mined `{path}` with {:?}: {} activities, {} edges ({} executions, {:.3}s)",
        Algorithm::GeneralDag,
        model.activity_count(),
        model.edge_count(),
        executions,
        elapsed.as_secs_f64()
    );
    for (u, v) in model.edges_named() {
        outln!("  {u} -> {v}");
    }

    write_model_artifacts(p, &model)?;
    report_mine_stats(p, &codec_stats, &ingest, &metrics, &tracer)?;
    write_trace(&tracer, p)?;
    write_metrics(&reg, p)?;
    Ok(())
}

fn mine(argv: &[String]) -> CliResult {
    let p = parse(
        argv,
        &[
            "format",
            "algorithm",
            "threshold",
            "threads",
            "dot",
            "graphml",
            "json",
            "bpmn",
            "stats-json",
            "max-errors",
            "deadline-ms",
            "trace",
            "snapshot-every",
            "max-open-cases",
            "poll-ms",
            "idle-ms",
            "checkpoint",
            "checkpoint-every",
            "io-retries",
            "metrics",
            "metrics-every",
        ],
        &["check", "stream", "stats", "recover", "follow"],
    )?;
    if p.has("follow") {
        return mine_follow(&p);
    }
    for follow_only in [
        "snapshot-every",
        "max-open-cases",
        "poll-ms",
        "idle-ms",
        "checkpoint",
        "checkpoint-every",
        "io-retries",
        "metrics-every",
    ] {
        if p.get(follow_only).is_some() {
            return Err(format!("--{follow_only} requires --follow").into());
        }
    }
    let path = p
        .positional()
        .first()
        .ok_or(ArgError::Required("log file"))?;
    let policy = ingest_policy(&p)?;
    let threads: usize = p.get_parse("threads", 0, "integer")?;
    let reg = registry_from_args(&p);
    let base = session_from_args(&p, &reg).with_threads(threads.max(1));
    let tracer = base.tracer().clone();
    let mut codec_stats = CodecStats::default();
    let mut ingest = IngestReport::default();
    let mut metrics = MinerMetrics::new();
    let mut session = base.with_sink(&mut metrics);
    let started = std::time::Instant::now();
    let (model, log, algorithm) = if p.has("stream") {
        if p.get("format").is_some_and(|f| f != "flowmark") {
            return Err("--stream supports the flowmark format only".into());
        }
        if p.get("threads").is_some() {
            return Err("--threads cannot be combined with --stream".into());
        }
        let (model, log) = mine_streaming(
            path,
            miner_options(&p)?,
            policy,
            &mut session,
            &mut codec_stats,
            &mut ingest,
        )?;
        (model, log, Algorithm::GeneralDag)
    } else {
        let format = p.get("format").unwrap_or("flowmark");
        let log = read_log_with(
            path,
            format,
            policy,
            &mut codec_stats,
            &mut ingest,
            &tracer,
            &reg,
            threads.max(1),
        )?;
        let (model, algorithm) = mine_with(&p, &mut session, &log)?;
        (model, log, algorithm)
    };
    drop(session);
    report_ingest(&ingest, policy);
    let elapsed = started.elapsed();

    outln!(
        "mined `{path}` with {algorithm:?}: {} activities, {} edges ({} executions, {:.3}s)",
        model.activity_count(),
        model.edge_count(),
        log.len(),
        elapsed.as_secs_f64()
    );
    for (u, v) in model.edges_named() {
        outln!("  {u} -> {v}");
    }

    // Route analytics (acyclic models with a unique source and sink).
    let g = model.graph();
    if let (&[source], &[sink]) = (&g.sources()[..], &g.sinks()[..]) {
        if let Ok(routes) = procmine_graph::paths::count_paths(g, source, sink) {
            outln!("distinct routes: {routes}");
        }
        if let Ok(Some(critical)) = procmine_graph::paths::longest_path(g, source, sink) {
            let names: Vec<&str> = critical.iter().map(|&v| g.node(v).as_str()).collect();
            outln!("critical path:   {}", names.join(" -> "));
        }
        let mandatory = procmine_graph::dominators::mandatory_activities(g, source, sink);
        let names: Vec<&str> = mandatory.iter().map(|&v| g.node(v).as_str()).collect();
        outln!("mandatory:       {}", names.join(", "));
    }

    // Split/join semantics from the log's co-occurrence statistics.
    let gateways = procmine_core::splits::analyze_gateways(&model, &log);
    for gw in gateways.splits.iter() {
        outln!(
            "split at {}: {} over {{{}}}",
            gw.activity,
            gw.kind,
            gw.branches.join(", ")
        );
    }
    for gw in gateways.joins.iter() {
        outln!(
            "join at {}:  {} over {{{}}}",
            gw.activity,
            gw.kind,
            gw.branches.join(", ")
        );
    }

    write_model_artifacts(&p, &model)?;
    if let Some(bpmn_path) = p.get("bpmn") {
        let gateways = procmine_core::splits::analyze_gateways(&model, &log);
        std::fs::write(
            bpmn_path,
            procmine_core::bpmn::to_bpmn_xml(&model, &gateways, "mined_process"),
        )?;
        errln!("wrote {bpmn_path}");
    }
    report_mine_stats(&p, &codec_stats, &ingest, &metrics, &tracer)?;
    let mut check_failed = false;
    if p.has("check") {
        let mut session = MineSession::new()
            .with_tracer(tracer.clone())
            .with_obs(reg.clone());
        let report = conformance::check_conformance_in(&mut session, &model, &log);
        if report.is_conformal() {
            outln!("conformance: OK (dependency-complete, irredundant, execution-complete)");
        } else {
            outln!("conformance: FAILED");
            for (u, v) in &report.missing_dependencies {
                outln!("  missing dependency: {u} -> {v}");
            }
            for (u, v) in &report.spurious_dependencies {
                outln!("  spurious dependency: {u} -> {v}");
            }
            for (exec, violations) in &report.inconsistent_executions {
                outln!("  inconsistent execution {exec}: {violations:?}");
            }
            for activity in &report.unknown_activities {
                outln!("  unknown activity: {activity}");
            }
            check_failed = true;
        }
    }
    write_trace(&tracer, &p)?;
    write_metrics(&reg, &p)?;
    if check_failed {
        return Err("mined model is not conformal".into());
    }
    Ok(())
}

fn check(argv: &[String]) -> CliResult {
    let p = parse(
        argv,
        &["format", "stats-json", "max-errors", "trace", "metrics"],
        &["stats", "recover", "json"],
    )?;
    let [model_path, log_path] = p.positional() else {
        return Err(ArgError::Required("MODEL.json and LOG arguments").into());
    };
    let model: MinedModel = serde_json::from_reader(BufReader::new(File::open(model_path)?))?;
    let format = p.get("format").unwrap_or("flowmark");
    let policy = ingest_policy(&p)?;
    let reg = registry_from_args(&p);
    let base = session_from_args(&p, &reg);
    let tracer = base.tracer().clone();
    let mut codec_stats = CodecStats::default();
    let mut ingest = IngestReport::default();
    let log = read_log_with(
        log_path,
        format,
        policy,
        &mut codec_stats,
        &mut ingest,
        &tracer,
        &reg,
        1,
    )?;
    report_ingest(&ingest, policy);
    let mut metrics = ConformanceMetrics::new();
    let mut session = base.with_sink(&mut metrics);
    let report = conformance::check_conformance_in(&mut session, &model, &log);
    drop(session);
    if p.has("stats") {
        outln!(
            "codec: {} bytes read, {} events parsed, {} executions parsed",
            codec_stats.bytes_read,
            codec_stats.events_parsed,
            codec_stats.executions_parsed
        );
        out!("{}", metrics.render_table());
        report_dropped_spans(&tracer);
    }
    if let Some(stats_path) = p.get("stats-json") {
        let mut out = String::from("{\"codec\":");
        out.push_str(&codec_stats.to_json());
        out.push_str(",\"ingest\":");
        out.push_str(&ingest.to_json());
        out.push(',');
        metrics.write_json_fields(&mut out);
        out.push(',');
        out.push_str(&trace_json_fragment(&tracer));
        out.push('}');
        out.push('\n');
        std::fs::write(stats_path, out)?;
        errln!("wrote {stats_path}");
    }
    write_trace(&tracer, &p)?;
    write_metrics(&reg, &p)?;
    if p.has("json") {
        // Machine-readable verdict on stdout; the exit status still
        // reflects conformality so scripts can branch either way.
        outln!("{}", report.to_json());
        return if report.is_conformal() {
            Ok(())
        } else {
            Err("model is not conformal".into())
        };
    }
    if report.is_conformal() {
        outln!("conformal: model satisfies Definition 7 for this log");
        Ok(())
    } else {
        outln!(
            "not conformal: {} missing, {} spurious, {} inconsistent executions, {} unknown activities",
            report.missing_dependencies.len(),
            report.spurious_dependencies.len(),
            report.inconsistent_executions.len(),
            report.unknown_activities.len()
        );
        for activity in &report.unknown_activities {
            outln!("  unknown activity: {activity}");
        }
        Err("model is not conformal".into())
    }
}

fn conditions(argv: &[String]) -> CliResult {
    let p = parse(
        argv,
        &[
            "format",
            "threshold",
            "max-depth",
            "stats-json",
            "max-errors",
            "deadline-ms",
            "trace",
            "metrics",
        ],
        &["stats", "recover"],
    )?;
    let path = p
        .positional()
        .first()
        .ok_or(ArgError::Required("log file"))?;
    let policy = ingest_policy(&p)?;
    let reg = registry_from_args(&p);
    let base = session_from_args(&p, &reg);
    let tracer = base.tracer().clone();
    let mut codec_stats = CodecStats::default();
    let mut ingest = IngestReport::default();
    let format = p.get("format").unwrap_or("flowmark");
    let log = read_log_with(
        path,
        format,
        policy,
        &mut codec_stats,
        &mut ingest,
        &tracer,
        &reg,
        1,
    )?;
    report_ingest(&ingest, policy);
    let mut miner_metrics = MinerMetrics::new();
    let mut session = base.with_sink(&mut miner_metrics);
    let (model, _) = mine_with(&p, &mut session, &log)?;
    drop(session);
    let cfg = TreeConfig {
        max_depth: p.get_parse("max-depth", 8, "integer")?,
        ..TreeConfig::default()
    };
    let mut classify_metrics = ClassifyMetrics::new();
    let mut session = MineSession::new()
        .with_tracer(tracer.clone())
        .with_obs(reg.clone())
        .with_sink(&mut classify_metrics);
    let learned = procmine_classify::learn_edge_conditions_in(&mut session, &model, &log, &cfg);
    drop(session);
    if p.has("stats") {
        outln!(
            "codec: {} bytes read, {} events parsed, {} executions parsed",
            codec_stats.bytes_read,
            codec_stats.events_parsed,
            codec_stats.executions_parsed
        );
        out!("{}", miner_metrics.render_table());
        out!("{}", classify_metrics.render_table());
        report_dropped_spans(&tracer);
    }
    if let Some(stats_path) = p.get("stats-json") {
        let mut out = String::from("{\"codec\":");
        out.push_str(&codec_stats.to_json());
        out.push_str(",\"ingest\":");
        out.push_str(&ingest.to_json());
        out.push(',');
        miner_metrics.write_json_fields(&mut out);
        out.push_str(",\"classify\":");
        out.push_str(&classify_metrics.to_json());
        out.push(',');
        out.push_str(&trace_json_fragment(&tracer));
        out.push('}');
        out.push('\n');
        std::fs::write(stats_path, out)?;
        errln!("wrote {stats_path}");
    }
    for c in &learned {
        outln!(
            "{} -> {}   [{} taken / {} not, accuracy {:.2}]",
            c.from,
            c.to,
            c.support.1,
            c.support.0,
            c.train_accuracy
        );
        if c.tree.is_none() {
            outln!("    (no outputs logged; unconditional)");
        } else if c.rules.is_empty() {
            outln!("    never taken");
        } else {
            for rule in &c.rules {
                outln!("    when {rule}");
            }
        }
    }
    write_trace(&tracer, &p)?;
    write_metrics(&reg, &p)
}

fn info(argv: &[String]) -> CliResult {
    let p = parse(argv, &["format"], &[])?;
    let path = p
        .positional()
        .first()
        .ok_or(ArgError::Required("log file"))?;
    let log = read_log(path, p.get("format").unwrap_or("flowmark"))?;
    let stats = procmine_log::stats::log_stats(&log);

    outln!("executions:  {}", stats.executions);
    outln!("activities:  {}", stats.activities);
    outln!("instances:   {}", stats.total_instances);
    outln!(
        "distinct:    {} distinct sequences",
        stats.distinct_sequences
    );
    outln!("max repeats: {}", log.max_repeats());
    outln!(
        "complete:    {} (every activity in every execution)",
        log.every_activity_in_every_execution()
    );
    outln!(
        "exec length: min {} / avg {:.1} / max {}",
        stats.min_len,
        stats.mean_len,
        stats.max_len
    );
    let names = |ids: &[procmine_log::ActivityId]| {
        ids.iter()
            .map(|&a| log.activities().name(a))
            .collect::<Vec<_>>()
            .join(", ")
    };
    outln!("starts with: {}", names(&stats.start_candidates()));
    outln!("ends with:   {}", names(&stats.end_candidates()));
    outln!("\nper-activity (executions / instances):");
    for s in &stats.per_activity {
        outln!(
            "  {:<24} {:>6} / {:<6}",
            log.activities().name(s.activity),
            s.executions,
            s.instances
        );
    }
    let variants = procmine_log::stats::variants(&log);
    outln!("\ntop variants ({} total):", variants.len());
    for v in variants.iter().take(5) {
        let names: Vec<&str> = v
            .sequence
            .iter()
            .map(|&a| log.activities().name(a))
            .collect();
        outln!(
            "  {:>4}x ({:>5.1}%)  {}",
            v.count,
            100.0 * v.count as f64 / log.len().max(1) as f64,
            names.join(" ")
        );
    }
    Ok(())
}
