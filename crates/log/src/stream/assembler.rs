//! The interleaved case assembler: events in, completed executions out.
//!
//! [`ExecutionStream`](crate::codec::stream::ExecutionStream) assumes
//! *contiguous cases* — all records of one case adjacent in the log.
//! Real multi-writer audit trails interleave cases freely, and under
//! that assumption a case id that reappears is silently split into two
//! executions, corrupting follows counts. [`CaseAssembler`] drops the
//! assumption: events are keyed into an open-case map by case id, and a
//! case is assembled into an [`Execution`](crate::Execution) when it
//! *closes* — evicted by the memory bound, or flushed at end of input.
//!
//! # Memory bound
//!
//! An unbounded stream can contain cases that never complete (a crashed
//! writer, a case id typo). The map is therefore bounded by
//! [`AssemblerConfig::max_open_cases`]: when a new case would exceed
//! the bound, the least-recently-touched case is *evicted* — assembled
//! leniently, its salvageable part delivered downstream, its unmatched
//! events dropped and reported. Evictions of structurally incomplete
//! cases are counted in
//! [`IngestReport::cases_evicted`](crate::IngestReport::cases_evicted)
//! and announced through [`Observer::on_eviction`]; an evicted case
//! whose events happen to pair up cleanly is delivered as a normal
//! completion and not counted (indistinguishable from a finished case).
//!
//! If events for an evicted case arrive later they open a *fresh* case
//! under the same id — the split the bound forces. Size the window
//! above the log's interleaving depth and no complete case is ever
//! split; the `--follow` parity tests pin exactly this.

use super::checkpoint::{self, CheckpointError, WireError, WireReader, WireWriter};
use super::{Observer, SourceLocation, StreamError, StreamSink};
use crate::validate::{assemble_executions_with, locate_diagnostic, AssemblyPolicy};
use crate::{ActivityTable, EventRecord, IngestReport};
use std::collections::HashMap;

/// Default [`AssemblerConfig::max_open_cases`]: generous for real logs
/// (the paper's 107 MB trail had far fewer concurrent cases) while
/// keeping worst-case memory far below materializing the log.
pub const DEFAULT_OPEN_CASE_WINDOW: usize = 1024;

/// Configuration for [`CaseAssembler`].
#[derive(Debug, Clone, Copy)]
pub struct AssemblerConfig {
    /// Upper bound on concurrently open cases; `0` means unbounded.
    pub max_open_cases: usize,
    /// How end-of-input assembly treats unmatched events. Evicted cases
    /// are always assembled leniently — under
    /// [`AssemblyPolicy::Strict`] an eviction would otherwise turn the
    /// memory bound itself into an input error.
    pub assembly: AssemblyPolicy,
}

impl Default for AssemblerConfig {
    fn default() -> Self {
        AssemblerConfig {
            max_open_cases: DEFAULT_OPEN_CASE_WINDOW,
            assembly: AssemblyPolicy::Lenient,
        }
    }
}

/// Buffered state of one open case.
struct OpenCase {
    records: Vec<EventRecord>,
    locations: Vec<SourceLocation>,
    /// Sequence number of the first event (flush order at finish).
    opened: u64,
    /// Sequence number of the latest event (LRU eviction order).
    last_touch: u64,
}

/// One open case as exported into a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpenCaseState {
    /// Case id.
    pub case: String,
    /// Buffered events, in arrival order.
    pub records: Vec<EventRecord>,
    /// Source location of each buffered event (same length as
    /// `records`).
    pub locations: Vec<SourceLocation>,
    /// Logical-clock tick of the first event.
    pub opened: u64,
    /// Logical-clock tick of the latest event.
    pub last_touch: u64,
}

/// The full resumable state of a [`CaseAssembler`]: activity table,
/// open cases (with their clocks, so LRU eviction and flush order
/// replay identically), and the accumulated ingest accounting.
/// Produced by [`CaseAssembler::export_state`], consumed by
/// [`CaseAssembler::resume`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AssemblerState {
    /// Interned activity names, in id order.
    pub activities: Vec<String>,
    /// Open cases, sorted by `opened` for deterministic encoding.
    pub open: Vec<OpenCaseState>,
    /// The logical clock (next event tick).
    pub clock: u64,
    /// Executions delivered to the observer so far.
    pub executions_emitted: u64,
    /// Assembly-side ingest accounting accumulated so far.
    pub report: IngestReport,
}

impl AssemblerState {
    /// Encodes the state into `w` (checkpoint wire format).
    pub fn encode_into(&self, w: &mut WireWriter) {
        w.put_usize(self.activities.len());
        for name in &self.activities {
            w.put_str(name);
        }
        w.put_usize(self.open.len());
        for case in &self.open {
            w.put_str(&case.case);
            w.put_u64(case.opened);
            w.put_u64(case.last_touch);
            w.put_usize(case.records.len());
            for (record, at) in case.records.iter().zip(&case.locations) {
                checkpoint::encode_event(w, record);
                checkpoint::encode_location(w, at);
            }
        }
        w.put_u64(self.clock);
        w.put_u64(self.executions_emitted);
        checkpoint::encode_report(w, &self.report);
    }

    /// Decodes a state from `r` (checkpoint wire format).
    pub fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let n = r.get_len("assembler.activities.len", 8)?;
        let mut activities = Vec::with_capacity(n);
        for _ in 0..n {
            activities.push(r.get_str("assembler.activity")?);
        }
        let cases = r.get_len("assembler.open.len", 24)?;
        let mut open = Vec::with_capacity(cases);
        for _ in 0..cases {
            let case = r.get_str("assembler.case")?;
            let opened = r.get_u64("assembler.case.opened")?;
            let last_touch = r.get_u64("assembler.case.last_touch")?;
            let events = r.get_len("assembler.case.events", 16)?;
            let mut records = Vec::with_capacity(events);
            let mut locations = Vec::with_capacity(events);
            for _ in 0..events {
                records.push(checkpoint::decode_event(r)?);
                locations.push(checkpoint::decode_location(r)?);
            }
            open.push(OpenCaseState {
                case,
                records,
                locations,
                opened,
                last_touch,
            });
        }
        let clock = r.get_u64("assembler.clock")?;
        let executions_emitted = r.get_u64("assembler.executions_emitted")?;
        let report = checkpoint::decode_report(r)?;
        Ok(AssemblerState {
            activities,
            open,
            clock,
            executions_emitted,
            report,
        })
    }
}

/// Keyed open-case map turning an interleaved event stream into
/// completed executions for an [`Observer`]. See the module docs for
/// the state machine and eviction policy.
pub struct CaseAssembler<O: Observer> {
    config: AssemblerConfig,
    observer: O,
    table: ActivityTable,
    open: HashMap<String, OpenCase>,
    /// Logical clock: one tick per event, orders `opened`/`last_touch`.
    clock: u64,
    executions_emitted: u64,
    report: IngestReport,
    finished: bool,
}

impl<O: Observer> CaseAssembler<O> {
    /// Creates an assembler delivering completed executions to
    /// `observer`.
    pub fn new(config: AssemblerConfig, observer: O) -> Self {
        CaseAssembler {
            config,
            observer,
            table: ActivityTable::new(),
            open: HashMap::new(),
            clock: 0,
            executions_emitted: 0,
            report: IngestReport::default(),
            finished: false,
        }
    }

    /// The activity table accumulated so far (ids in delivered
    /// executions are relative to it; it only grows).
    pub fn activities(&self) -> &ActivityTable {
        &self.table
    }

    /// Cases currently buffered — always `<= max_open_cases` when the
    /// bound is set (the eviction test pins this).
    pub fn open_cases(&self) -> usize {
        self.open.len()
    }

    /// Executions delivered to the observer so far.
    pub fn executions_emitted(&self) -> u64 {
        self.executions_emitted
    }

    /// Assembly-side ingest accounting: events dropped by lenient
    /// assembly (`records_skipped`, located in `errors`) and
    /// `cases_evicted`. Parse-side tallies live in the upstream
    /// source's report; merge the two for a complete picture.
    pub fn report(&self) -> &IngestReport {
        &self.report
    }

    /// Unwraps the observer (after [`StreamSink::finish`]).
    pub fn into_observer(self) -> O {
        self.observer
    }

    /// Borrows the observer (e.g. to consult miner state between
    /// events while deciding whether a checkpoint is due).
    pub fn observer(&self) -> &O {
        &self.observer
    }

    /// Mutably borrows the observer.
    pub fn observer_mut(&mut self) -> &mut O {
        &mut self.observer
    }

    /// Exports the full resumable state: activity table, open cases
    /// with their logical clocks, and the accumulated report. Open
    /// cases are sorted by `opened` so the encoding is deterministic
    /// regardless of hash-map iteration order.
    pub fn export_state(&self) -> AssemblerState {
        let mut open: Vec<OpenCaseState> = self
            .open
            .iter()
            .map(|(name, c)| OpenCaseState {
                case: name.clone(),
                records: c.records.clone(),
                locations: c.locations.clone(),
                opened: c.opened,
                last_touch: c.last_touch,
            })
            .collect();
        open.sort_by_key(|c| c.opened);
        AssemblerState {
            activities: self.table.names().to_vec(),
            open,
            clock: self.clock,
            executions_emitted: self.executions_emitted,
            report: self.report.clone(),
        }
    }

    /// Rebuilds an assembler from an exported [`AssemblerState`],
    /// delivering future executions to `observer`. The restored
    /// assembler replays exactly like the original: same activity-id
    /// assignment, same LRU eviction order, same finish flush order.
    /// Structural inconsistencies (length mismatches, clock
    /// violations, duplicate names) are rejected — a checkpoint that
    /// fails them is corrupt even if its checksum matched.
    pub fn resume(
        config: AssemblerConfig,
        observer: O,
        state: AssemblerState,
    ) -> Result<Self, CheckpointError> {
        let invalid = |message: String| CheckpointError::Payload { message };
        let table = ActivityTable::from_names(state.activities.iter().map(String::as_str));
        if table.len() != state.activities.len() {
            return Err(invalid(format!(
                "assembler activity table has duplicate names ({} unique of {})",
                table.len(),
                state.activities.len()
            )));
        }
        let mut open = HashMap::with_capacity(state.open.len());
        for case in state.open {
            if case.records.len() != case.locations.len() {
                return Err(invalid(format!(
                    "open case `{}` has {} records but {} locations",
                    case.case,
                    case.records.len(),
                    case.locations.len()
                )));
            }
            if case.records.is_empty() {
                return Err(invalid(format!("open case `{}` has no events", case.case)));
            }
            if case.opened > case.last_touch || case.last_touch >= state.clock {
                return Err(invalid(format!(
                    "open case `{}` has clock ticks {}..{} outside the assembler clock {}",
                    case.case, case.opened, case.last_touch, state.clock
                )));
            }
            if open
                .insert(
                    case.case.clone(),
                    OpenCase {
                        records: case.records,
                        locations: case.locations,
                        opened: case.opened,
                        last_touch: case.last_touch,
                    },
                )
                .is_some()
            {
                return Err(invalid(format!("open case `{}` appears twice", case.case)));
            }
        }
        if config.max_open_cases > 0 && open.len() > config.max_open_cases {
            return Err(invalid(format!(
                "{} open cases exceed the --max-open-cases window {}",
                open.len(),
                config.max_open_cases
            )));
        }
        Ok(CaseAssembler {
            config,
            observer,
            table,
            open,
            clock: state.clock,
            executions_emitted: state.executions_emitted,
            report: state.report,
            finished: false,
        })
    }

    /// Closes one case: assemble, account diagnostics, deliver.
    fn close_case(
        &mut self,
        name: &str,
        case: OpenCase,
        assembly: AssemblyPolicy,
        eviction: bool,
    ) -> Result<(), StreamError> {
        let assembled = assemble_executions_with(&case.records, &mut self.table, assembly)?;
        self.report.records_skipped += assembled.diagnostics.len() as u64;
        for diag in &assembled.diagnostics {
            let at = locate_diagnostic(&case.records, diag)
                .map(|i| case.locations[i])
                .unwrap_or_default();
            self.report
                .record_diagnostic(at.byte_offset, at.line, diag.to_string());
        }
        if eviction && !assembled.diagnostics.is_empty() {
            self.report.cases_evicted += 1;
            self.observer.on_eviction(name, case.records.len());
        }
        for exec in &assembled.executions {
            self.observer.on_execution(exec, &self.table)?;
            self.executions_emitted += 1;
        }
        Ok(())
    }

    /// Evicts the least-recently-touched case to honor the bound.
    fn evict_lru(&mut self) -> Result<(), StreamError> {
        let Some(victim) = self
            .open
            .iter()
            .min_by_key(|(_, c)| c.last_touch)
            .map(|(name, _)| name.clone())
        else {
            return Ok(());
        };
        let Some(case) = self.open.remove(&victim) else {
            return Ok(()); // unreachable: key just came from the map
        };
        self.close_case(&victim, case, AssemblyPolicy::Lenient, true)
    }
}

impl<O: Observer> StreamSink for CaseAssembler<O> {
    fn on_event(&mut self, event: EventRecord, at: SourceLocation) -> Result<(), StreamError> {
        let tick = self.clock;
        self.clock += 1;
        if let Some(case) = self.open.get_mut(&event.process) {
            case.last_touch = tick;
            case.records.push(event);
            case.locations.push(at);
            return Ok(());
        }
        if self.config.max_open_cases > 0 && self.open.len() >= self.config.max_open_cases {
            self.evict_lru()?;
        }
        self.open.insert(
            event.process.clone(),
            OpenCase {
                records: vec![event],
                locations: vec![at],
                opened: tick,
                last_touch: tick,
            },
        );
        Ok(())
    }

    fn finish(&mut self) -> Result<(), StreamError> {
        if self.finished {
            return Ok(());
        }
        self.finished = true;
        // Flush remaining cases in the order they were opened, so a
        // fully buffered (non-evicting) run reproduces batch order.
        let mut names: Vec<(u64, String)> = self
            .open
            .iter()
            .map(|(name, c)| (c.opened, name.clone()))
            .collect();
        names.sort_unstable();
        let assembly = self.config.assembly;
        for (_, name) in names {
            let Some(case) = self.open.remove(&name) else {
                continue; // unreachable: keys snapshot from the map
            };
            self.close_case(&name, case, assembly, false)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Execution;

    /// Observer capturing displayed sequences and eviction notices.
    #[derive(Default)]
    struct Capture {
        execs: Vec<(String, String)>,
        evictions: Vec<(String, usize)>,
    }

    impl Observer for &mut Capture {
        fn on_execution(
            &mut self,
            exec: &Execution,
            table: &ActivityTable,
        ) -> Result<(), StreamError> {
            self.execs.push((exec.id.clone(), exec.display(table)));
            Ok(())
        }

        fn on_eviction(&mut self, case: &str, buffered: usize) {
            self.evictions.push((case.to_string(), buffered));
        }
    }

    fn feed(
        assembler: &mut CaseAssembler<impl Observer>,
        events: &[EventRecord],
    ) -> Result<(), StreamError> {
        for (i, e) in events.iter().enumerate() {
            assembler.on_event(
                e.clone(),
                SourceLocation {
                    byte_offset: i as u64,
                    line: i + 1,
                },
            )?;
        }
        assembler.finish()
    }

    #[test]
    fn interleaved_cases_assemble_whole() {
        let mut cap = Capture::default();
        let mut asm = CaseAssembler::new(AssemblerConfig::default(), &mut cap);
        feed(
            &mut asm,
            &[
                EventRecord::start("p1", "A", 0),
                EventRecord::start("p2", "A", 0),
                EventRecord::end("p1", "A", 1, None),
                EventRecord::end("p2", "A", 1, None),
                EventRecord::start("p1", "B", 2), // p1 reappears: same case
                EventRecord::end("p1", "B", 3, None),
            ],
        )
        .unwrap();
        assert_eq!(asm.report().cases_evicted, 0);
        drop(asm);
        assert_eq!(
            cap.execs,
            vec![
                ("p1".to_string(), "A B".to_string()),
                ("p2".to_string(), "A".to_string()),
            ]
        );
    }

    #[test]
    fn eviction_bounds_open_cases_and_reports() {
        let mut cap = Capture::default();
        let mut asm = CaseAssembler::new(
            AssemblerConfig {
                max_open_cases: 2,
                ..AssemblerConfig::default()
            },
            &mut cap,
        );
        // Three never-completing cases: the third arrival evicts p1.
        for (i, case) in ["p1", "p2", "p3"].iter().enumerate() {
            asm.on_event(
                EventRecord::start(*case, "A", i as u64),
                SourceLocation::default(),
            )
            .unwrap();
            assert!(asm.open_cases() <= 2);
        }
        assert_eq!(asm.report().cases_evicted, 1);
        assert_eq!(asm.report().records_skipped, 1, "p1's dangling START");
        drop(asm);
        assert_eq!(cap.evictions, vec![("p1".to_string(), 1)]);
    }

    #[test]
    fn evicted_balanced_case_is_a_normal_completion() {
        let mut cap = Capture::default();
        let mut asm = CaseAssembler::new(
            AssemblerConfig {
                max_open_cases: 1,
                ..AssemblerConfig::default()
            },
            &mut cap,
        );
        feed(
            &mut asm,
            &[
                EventRecord::start("p1", "A", 0),
                EventRecord::end("p1", "A", 1, None),
                EventRecord::start("p2", "B", 2), // evicts balanced p1
                EventRecord::end("p2", "B", 3, None),
            ],
        )
        .unwrap();
        assert_eq!(asm.report().cases_evicted, 0, "balanced eviction is free");
        drop(asm);
        assert_eq!(cap.evictions, vec![]);
        assert_eq!(cap.execs.len(), 2);
    }

    #[test]
    fn finish_flushes_in_opened_order() {
        let mut cap = Capture::default();
        let mut asm = CaseAssembler::new(AssemblerConfig::default(), &mut cap);
        feed(
            &mut asm,
            &[
                EventRecord::start("late", "A", 0),
                EventRecord::start("early", "B", 0),
                EventRecord::end("early", "B", 1, None),
                EventRecord::end("late", "A", 1, None),
            ],
        )
        .unwrap();
        drop(asm);
        let ids: Vec<&str> = cap.execs.iter().map(|(id, _)| id.as_str()).collect();
        assert_eq!(ids, ["late", "early"], "first-event order, not close order");
    }

    #[test]
    fn strict_finish_surfaces_unmatched_events() {
        let mut cap = Capture::default();
        let mut asm = CaseAssembler::new(
            AssemblerConfig {
                assembly: AssemblyPolicy::Strict,
                ..AssemblerConfig::default()
            },
            &mut cap,
        );
        let err = feed(&mut asm, &[EventRecord::start("p1", "A", 0)]).unwrap_err();
        assert!(matches!(
            err,
            StreamError::Log(crate::LogError::UnmatchedStart { .. })
        ));
    }

    #[test]
    fn lenient_diagnostics_carry_source_locations() {
        let mut cap = Capture::default();
        let mut asm = CaseAssembler::new(AssemblerConfig::default(), &mut cap);
        feed(
            &mut asm,
            &[
                EventRecord::start("p1", "A", 0),
                EventRecord::end("p1", "A", 1, None),
                EventRecord::end("p1", "Z", 2, None), // dangling END at line 3
            ],
        )
        .unwrap();
        assert_eq!(asm.report().records_skipped, 1);
        assert_eq!(asm.report().errors.len(), 1);
        assert_eq!(asm.report().errors[0].line, 3);
        assert_eq!(asm.report().errors[0].byte_offset, 2);
        assert_eq!(
            asm.report().errors_total,
            0,
            "diagnostics must not burn the Skip budget"
        );
    }

    /// Mid-stream export/resume replays exactly like an uninterrupted
    /// run: same executions in the same order, same report.
    #[test]
    fn export_resume_roundtrip_replays_identically() {
        let events = [
            EventRecord::start("p1", "A", 0),
            EventRecord::start("p2", "A", 0),
            EventRecord::end("p1", "A", 1, None),
            EventRecord::start("p1", "B", 2),
            EventRecord::end("p2", "A", 1, None),
            EventRecord::end("p1", "B", 3, None),
            EventRecord::start("p3", "C", 4),
            EventRecord::end("p3", "C", 5, None),
        ];
        let at = |i: usize| SourceLocation {
            byte_offset: i as u64,
            line: i + 1,
        };

        // Uninterrupted baseline.
        let mut base_cap = Capture::default();
        let mut base = CaseAssembler::new(AssemblerConfig::default(), &mut base_cap);
        for (i, e) in events.iter().enumerate() {
            base.on_event(e.clone(), at(i)).unwrap();
        }
        base.finish().unwrap();
        let base_report = base.report().clone();
        drop(base);

        // Interrupted at an arbitrary mid-stream boundary.
        let split = 4;
        let mut first_cap = Capture::default();
        let mut first = CaseAssembler::new(AssemblerConfig::default(), &mut first_cap);
        for (i, e) in events[..split].iter().enumerate() {
            first.on_event(e.clone(), at(i)).unwrap();
        }
        let state = first.export_state();
        drop(first); // "crash": never finished

        // Wire roundtrip, then resume and replay the tail.
        let mut w = WireWriter::new();
        state.encode_into(&mut w);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        let restored = AssemblerState::decode(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(restored, state);

        let mut resumed_cap = Capture::default();
        let mut resumed =
            CaseAssembler::resume(AssemblerConfig::default(), &mut resumed_cap, restored).unwrap();
        for (i, e) in events[split..].iter().enumerate() {
            resumed.on_event(e.clone(), at(split + i)).unwrap();
        }
        resumed.finish().unwrap();
        let resumed_report = resumed.report().clone();
        drop(resumed);

        let mut combined = first_cap.execs;
        combined.extend(resumed_cap.execs);
        assert_eq!(combined, base_cap.execs);
        assert_eq!(resumed_report, base_report);
    }

    #[test]
    fn resume_rejects_structurally_corrupt_state() {
        let sane = |name: &str| OpenCaseState {
            case: name.to_string(),
            records: vec![EventRecord::start(name, "A", 0)],
            locations: vec![SourceLocation::default()],
            opened: 0,
            last_touch: 0,
        };
        let reject = |state: AssemblerState, needle: &str| {
            let err =
                CaseAssembler::resume(AssemblerConfig::default(), &mut Capture::default(), state)
                    .err()
                    .map(|e| e.to_string())
                    .unwrap_or_else(|| panic!("corrupt state accepted ({needle})"));
            assert!(err.contains(needle), "got: {err}");
        };

        reject(
            AssemblerState {
                activities: vec!["A".to_string(), "A".to_string()],
                clock: 1,
                ..AssemblerState::default()
            },
            "duplicate names",
        );
        let mut mismatched = sane("p1");
        mismatched.locations.clear();
        reject(
            AssemblerState {
                open: vec![mismatched],
                clock: 1,
                ..AssemblerState::default()
            },
            "records but",
        );
        reject(
            AssemblerState {
                open: vec![sane("p1")],
                clock: 0, // last_touch 0 is not < clock 0
                ..AssemblerState::default()
            },
            "outside the assembler clock",
        );
        let err = CaseAssembler::resume(
            AssemblerConfig {
                max_open_cases: 2,
                ..AssemblerConfig::default()
            },
            &mut Capture::default(),
            AssemblerState {
                open: vec![sane("p1"), sane("p2"), sane("p3")],
                clock: 1,
                ..AssemblerState::default()
            },
        )
        .map(|_| ())
        .expect_err("over-window state accepted")
        .to_string();
        assert!(err.contains("exceed the --max-open-cases"), "got: {err}");
    }

    #[test]
    fn finish_is_idempotent() {
        let mut cap = Capture::default();
        let mut asm = CaseAssembler::new(AssemblerConfig::default(), &mut cap);
        asm.on_event(EventRecord::start("p", "A", 0), SourceLocation::default())
            .unwrap();
        asm.on_event(
            EventRecord::end("p", "A", 1, None),
            SourceLocation::default(),
        )
        .unwrap();
        asm.finish().unwrap();
        asm.finish().unwrap();
        drop(asm);
        assert_eq!(cap.execs.len(), 1);
    }
}
