//! Table 1 — execution times of the miner on synthetic datasets.
//!
//! The paper reports seconds on a 1994 RS/6000 250 for random DAGs of
//! 10/25/50/100 vertices and logs of 100/1 000/10 000 executions:
//!
//! ```text
//! executions    10     25     50    100   (vertices)
//!        100   4.6    6.5    9.9   15.9
//!       1000  46.6   64.6  100.4  153.2
//!      10000 393.3  570.6  879.7 1385.1
//! ```
//!
//! Absolute numbers are incomparable across three decades of hardware;
//! the *shapes* being reproduced are (a) linear scaling in the number of
//! executions at fixed graph size, and (b) sub-quadratic growth with the
//! number of vertices in this range. Run with `--release`.

use procmine_bench::{
    paper_execution_counts, paper_graph_configs, synthetic_workload, timed_mine, TextTable,
};

fn main() {
    println!("Table 1: mining time (seconds) on synthetic datasets\n");
    let configs = paper_graph_configs();
    let mut headers = vec!["executions".to_string()];
    headers.extend(configs.iter().map(|(n, _)| format!("n={n}")));
    let mut table = TextTable::new(headers);

    let mut per_exec_times: Vec<Vec<f64>> = Vec::new();
    for &m in &paper_execution_counts() {
        let mut row = vec![format!("{m}")];
        let mut times = Vec::new();
        for (i, &(n, edges)) in configs.iter().enumerate() {
            let (_, log) = synthetic_workload(n, edges, m, 1000 + i as u64);
            // Repeat until ≥0.5s of measurement so the m-scaling ratios
            // are stable even for the fast small configurations.
            let mut total = 0.0;
            let mut runs = 0u32;
            while total < 0.5 && runs < 1000 {
                let (_, elapsed) = timed_mine(&log);
                total += elapsed.as_secs_f64();
                runs += 1;
            }
            let mean = total / runs as f64;
            times.push(mean);
            row.push(format!("{mean:.4}"));
        }
        per_exec_times.push(times);
        table.row(row);
    }
    println!("{}", table.render());

    // Shape check (a): time scales ~linearly in m at fixed n.
    println!("scaling in m (time ratio per 10x executions; paper: ~8.5-10x):");
    for (col, (n, _)) in configs.iter().enumerate() {
        let r1 = per_exec_times[1][col] / per_exec_times[0][col].max(1e-9);
        let r2 = per_exec_times[2][col] / per_exec_times[1][col].max(1e-9);
        println!("  n={n:>3}: 100->1000 = {r1:.1}x, 1000->10000 = {r2:.1}x");
    }
    // Shape check (b): growth with n at fixed m.
    let last = per_exec_times.last().expect("rows exist");
    println!(
        "scaling in n at m=10000 (paper: 393s->1385s, ~3.5x from n=10 to n=100): {:.1}x",
        last[configs.len() - 1] / last[0].max(1e-9)
    );
}
