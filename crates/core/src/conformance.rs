//! Conformance checking: Definitions 6 and 7 of the paper, implemented
//! independently of the miners so mined models can be *verified*, not
//! just trusted.
//!
//! * [`check_execution`] — Definition 6: is one execution consistent
//!   with a model graph? (Induced subgraph connected, endpoints are the
//!   initiating/terminating activities, everything reachable from the
//!   start, no graph dependency contradicted by the observed ordering.)
//! * [`check_conformance`] — Definition 7: is the model conformal with a
//!   whole log? (Dependency completeness + irredundancy against the
//!   [`follows`](crate::follows) relations, plus execution completeness
//!   via Definition 6.)
//!
//! For models with cycles, activities in the same strongly connected
//! component follow each other both ways and are therefore *independent*
//! (Definition 4); dependency checks skip such pairs, which generalizes
//! the paper's DAG-centric definitions the way §5 intends.

use crate::follows::FollowsAnalysis;
use crate::MinedModel;
use procmine_graph::{reach, scc, NodeId};
use procmine_log::{Execution, WorkflowLog};

/// One way an execution can fail Definition 6 against a model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// The induced subgraph over the execution's activities is not
    /// (weakly) connected.
    NotConnected,
    /// The execution does not start at the model's initiating activity.
    WrongInitiating {
        /// The activity the execution actually started with.
        found: String,
    },
    /// The execution does not end at the model's terminating activity.
    WrongTerminating {
        /// The activity the execution actually ended with.
        found: String,
    },
    /// An activity in the execution cannot be reached from the
    /// initiating activity within the induced subgraph.
    Unreachable {
        /// The unreachable activity.
        activity: String,
    },
    /// The execution orders two activities against a model dependency.
    DependencyViolated {
        /// Dependency source (must come first per the model).
        from: String,
        /// Dependency target (observed not-after `from`).
        to: String,
    },
}

/// Checks one execution against a model graph (Definition 6). Returns
/// all violations found (empty = consistent).
///
/// The model's node ids must align with the log's activity table (true
/// for models mined from that log and for simulator ground truth).
pub fn check_execution(model: &MinedModel, exec: &Execution) -> Vec<Violation> {
    let g = model.graph();
    let mut violations = Vec::new();

    // Present activities, in start order (dedup, keep first occurrence).
    let mut present: Vec<usize> = Vec::new();
    let mut seen = vec![false; g.node_count()];
    for a in exec.sequence() {
        if !seen[a.index()] {
            seen[a.index()] = true;
            present.push(a.index());
        }
    }

    // Induced subgraph over the present activities: Definition 6 takes
    // *all* model edges between present activities.
    let present_ids: Vec<NodeId> = present.iter().map(|&a| NodeId::new(a)).collect();
    let induced = procmine_graph::induced::induced_subgraph(g, &present_ids).graph;

    if !reach::is_weakly_connected(&induced) {
        violations.push(Violation::NotConnected);
    }

    // Endpoints: the model's initiating/terminating activities are its
    // sources/sinks. (A well-formed process model has exactly one of
    // each; we accept membership so partially-mined graphs still check.)
    let (first, last) = exec.endpoints();
    let sources = g.sources();
    let sinks = g.sinks();
    if !sources.is_empty() && !sources.contains(&NodeId::new(first.index())) {
        violations.push(Violation::WrongInitiating {
            found: model.name_of(NodeId::new(first.index())).to_string(),
        });
    }
    if !sinks.is_empty() && !sinks.contains(&NodeId::new(last.index())) {
        violations.push(Violation::WrongTerminating {
            found: model.name_of(NodeId::new(last.index())).to_string(),
        });
    }

    // Reachability from the initiating activity within the induced
    // subgraph.
    let start_pos = NodeId::new(
        present
            .iter()
            .position(|&a| a == first.index())
            .expect("first activity is present"),
    );
    let mut reachable = reach::reachable_from(&induced, start_pos);
    reachable.insert(start_pos.index());
    for (i, &a) in present.iter().enumerate() {
        if !reachable.contains(i) {
            violations.push(Violation::Unreachable {
                activity: model.name_of(NodeId::new(a)).to_string(),
            });
        }
    }

    // Dependency ordering: for each pair with a path u→v in the induced
    // subgraph but not v→u (a real dependency — mutual paths mean a
    // cycle, i.e. independence), u must terminate before v starts.
    let closure = reach::transitive_closure(&induced);
    // Whole-activity intervals within this execution.
    let mut min_start = vec![u64::MAX; g.node_count()];
    let mut max_end = vec![0u64; g.node_count()];
    for inst in exec.instances() {
        let a = inst.activity.index();
        min_start[a] = min_start[a].min(inst.start);
        max_end[a] = max_end[a].max(inst.end);
    }
    for (i, &u) in present.iter().enumerate() {
        for (j, &v) in present.iter().enumerate() {
            if i != j && closure.has_edge(i, j) && !closure.has_edge(j, i) {
                // u must wholly precede v.
                if max_end[u] >= min_start[v] {
                    violations.push(Violation::DependencyViolated {
                        from: model.name_of(NodeId::new(u)).to_string(),
                        to: model.name_of(NodeId::new(v)).to_string(),
                    });
                }
            }
        }
    }

    violations
}

/// The result of checking a model against a log (Definition 7).
#[derive(Debug, Clone, Default)]
pub struct ConformanceReport {
    /// Dependencies in the log (`v` depends on `u`) with no `u→v` path
    /// in the model — failures of *dependency completeness*.
    pub missing_dependencies: Vec<(String, String)>,
    /// Independent activity pairs connected by a model path — failures
    /// of *irredundancy*.
    pub spurious_dependencies: Vec<(String, String)>,
    /// Executions that are not consistent with the model
    /// (Definition 6) — failures of *execution completeness*.
    pub inconsistent_executions: Vec<(String, Vec<Violation>)>,
}

impl ConformanceReport {
    /// `true` if the model is conformal with the log.
    pub fn is_conformal(&self) -> bool {
        self.missing_dependencies.is_empty()
            && self.spurious_dependencies.is_empty()
            && self.inconsistent_executions.is_empty()
    }
}

/// Checks a model against a log for all three conformal-graph properties
/// (Definition 7). The model's node ids must align with the log's
/// activity table.
pub fn check_conformance(model: &MinedModel, log: &WorkflowLog) -> ConformanceReport {
    let g = model.graph();
    let n = g.node_count();
    let follows = FollowsAnalysis::analyze(log);
    assert_eq!(
        follows.activity_count(),
        n,
        "model and log must share an activity table"
    );

    let closure = reach::transitive_closure(g);
    let sccs = scc::tarjan_scc(g);

    let mut report = ConformanceReport::default();
    for u in 0..n {
        for v in 0..n {
            if u == v {
                continue;
            }
            let path = closure.has_edge(u, v);
            let same_cycle = sccs.same_component(NodeId::new(u), NodeId::new(v));
            if follows.depends(u, v) && !path {
                report.missing_dependencies.push((
                    g.node(NodeId::new(u)).clone(),
                    g.node(NodeId::new(v)).clone(),
                ));
            }
            if follows.independent(u, v) && path && !same_cycle {
                report.spurious_dependencies.push((
                    g.node(NodeId::new(u)).clone(),
                    g.node(NodeId::new(v)).clone(),
                ));
            }
        }
    }

    for exec in log.executions() {
        let violations = check_execution(model, exec);
        if !violations.is_empty() {
            report
                .inconsistent_executions
                .push((exec.id.clone(), violations));
        }
    }
    report
}

/// Aggregate *fitness* of a log against a model: the fraction of
/// executions that are consistent (Definition 6), with a per-violation
/// breakdown. This is the replay-fitness notion process-mining practice
/// uses to score a purported model against reality — the paper's
/// "evaluation of the workflow system by comparing the synthesized
/// process graphs with purported graphs" application.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Fitness {
    /// Total executions checked.
    pub executions: usize,
    /// Executions with no violations.
    pub consistent: usize,
    /// Count of [`Violation::NotConnected`].
    pub not_connected: usize,
    /// Count of wrong initiating/terminating endpoints.
    pub wrong_endpoints: usize,
    /// Count of [`Violation::Unreachable`].
    pub unreachable: usize,
    /// Count of [`Violation::DependencyViolated`].
    pub dependency_violated: usize,
}

impl Fitness {
    /// Fraction of consistent executions (1.0 for an empty log).
    pub fn fraction(&self) -> f64 {
        if self.executions == 0 {
            1.0
        } else {
            self.consistent as f64 / self.executions as f64
        }
    }
}

/// Computes the replay fitness of `log` against `model`.
pub fn fitness(model: &MinedModel, log: &WorkflowLog) -> Fitness {
    let mut f = Fitness {
        executions: log.len(),
        ..Fitness::default()
    };
    for exec in log.executions() {
        let violations = check_execution(model, exec);
        if violations.is_empty() {
            f.consistent += 1;
        }
        for v in violations {
            match v {
                Violation::NotConnected => f.not_connected += 1,
                Violation::WrongInitiating { .. } | Violation::WrongTerminating { .. } => {
                    f.wrong_endpoints += 1
                }
                Violation::Unreachable { .. } => f.unreachable += 1,
                Violation::DependencyViolated { .. } => f.dependency_violated += 1,
            }
        }
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{mine_general_dag, mine_special_dag, MinerOptions};
    use procmine_graph::DiGraph;

    /// Figure 1 of the paper: A→B, A→C, B→E, C→D, C→E, D→E.
    fn figure1() -> (MinedModel, WorkflowLog) {
        // Build a log over A..E so activity ids are 0..5 in this order.
        let log = WorkflowLog::from_strings(["ABCDE"]).unwrap();
        let g = DiGraph::from_edges(
            vec!["A".into(), "B".into(), "C".into(), "D".into(), "E".into()],
            [(0, 1), (0, 2), (1, 4), (2, 3), (2, 4), (3, 4)],
        );
        (MinedModel::from_graph(g), log)
    }

    fn exec_of(log: &WorkflowLog, s: &str) -> Execution {
        let ids: Vec<_> = s
            .chars()
            .map(|c| log.activities().id(&c.to_string()).unwrap())
            .collect();
        Execution::from_ids(s, &ids).unwrap()
    }

    #[test]
    fn paper_example_4_consistent() {
        // ACBE is consistent with Figure 1.
        let (model, log) = figure1();
        let exec = exec_of(&log, "ACBE");
        assert_eq!(check_execution(&model, &exec), vec![]);
    }

    #[test]
    fn paper_example_4_inconsistent() {
        // ADBE is not: D is unreachable from A in the induced subgraph
        // (its only incoming edge comes from the absent C).
        let (model, log) = figure1();
        let exec = exec_of(&log, "ADBE");
        let violations = check_execution(&model, &exec);
        assert!(
            violations
                .iter()
                .any(|v| matches!(v, Violation::Unreachable { activity } if activity == "D")),
            "got {violations:?}"
        );
    }

    #[test]
    fn dependency_order_violation_detected() {
        let (model, log) = figure1();
        // B before A contradicts A→B.
        let exec = exec_of(&log, "BACDE");
        let violations = check_execution(&model, &exec);
        assert!(violations.iter().any(
            |v| matches!(v, Violation::DependencyViolated { from, to } if from == "A" && to == "B")
        ));
        assert!(violations
            .iter()
            .any(|v| matches!(v, Violation::WrongInitiating { found } if found == "B")));
    }

    #[test]
    fn wrong_terminating_detected() {
        let (model, log) = figure1();
        let exec = exec_of(&log, "ABCD");
        let violations = check_execution(&model, &exec);
        assert!(violations
            .iter()
            .any(|v| matches!(v, Violation::WrongTerminating { found } if found == "D")));
    }

    #[test]
    fn mined_special_models_are_conformal() {
        let log = WorkflowLog::from_strings(["ABCDE", "ACDBE", "ACBDE"]).unwrap();
        let model = mine_special_dag(&log, &MinerOptions::default()).unwrap();
        let report = check_conformance(&model, &log);
        assert!(report.is_conformal(), "{report:?}");
    }

    #[test]
    fn mined_general_models_are_conformal() {
        for strings in [
            vec!["ABCF", "ACDF", "ADEF", "AECF"],
            vec!["ADCE", "ABCDE"],
            vec!["ACF", "ADCF", "ABCF", "ADECF"],
            vec!["ABCD", "ACD"],
        ] {
            let log = WorkflowLog::from_strings(strings.clone()).unwrap();
            let model = mine_general_dag(&log, &MinerOptions::default()).unwrap();
            let report = check_conformance(&model, &log);
            assert!(report.is_conformal(), "log {strings:?}: {report:?}");
        }
    }

    #[test]
    fn missing_dependency_reported() {
        // Log forces A→B dependency; an edgeless model misses it.
        let log = WorkflowLog::from_strings(["AB", "AB"]).unwrap();
        let g = DiGraph::from_edges(vec!["A".into(), "B".into()], std::iter::empty());
        let model = MinedModel::from_graph(g);
        let report = check_conformance(&model, &log);
        assert!(report
            .missing_dependencies
            .contains(&("A".to_string(), "B".to_string())));
        assert!(!report.is_conformal());
    }

    #[test]
    fn spurious_dependency_reported() {
        // B and C appear in both orders → independent; a model chaining
        // B→C introduces a spurious dependency.
        let log = WorkflowLog::from_strings(["ABCD", "ACBD"]).unwrap();
        let g = DiGraph::from_edges(
            vec!["A".into(), "B".into(), "C".into(), "D".into()],
            [(0, 1), (1, 2), (2, 3)],
        );
        let model = MinedModel::from_graph(g);
        let report = check_conformance(&model, &log);
        assert!(report
            .spurious_dependencies
            .contains(&("B".to_string(), "C".to_string())));
    }

    #[test]
    fn figure2_second_graph_fails_execution_completeness() {
        // Example 5: log {ADCE, ABCDE}; the second Figure-2 graph chains
        // … C→D …, forbidding ADCE (D before C).
        let log = WorkflowLog::from_strings(["ADCE", "ABCDE"]).unwrap();
        // Activity order in table: A,D,C,E,B → indices A=0,D=1,C=2,E=3,B=4.
        // Second graph of Figure 2: A→B, B→C, A→D? Paper's second graph:
        // A→B→C→D→E with D reachable only after C. Build edges by name.
        let names: Vec<String> = log.activities().names().to_vec();
        let idx = |s: &str| log.activities().id(s).unwrap().index();
        let g = DiGraph::from_edges(
            names,
            [
                (idx("A"), idx("B")),
                (idx("A"), idx("D")),
                (idx("B"), idx("C")),
                (idx("D"), idx("C")),
                (idx("C"), idx("E")),
                (idx("C"), idx("D")),
            ],
        );
        // This graph has both C→D and D→C — a cycle — so instead test
        // the straightforward inconsistent model: A→B→C→D→E chain.
        drop(g);
        let names: Vec<String> = log.activities().names().to_vec();
        let chain = DiGraph::from_edges(
            names,
            [
                (idx("A"), idx("B")),
                (idx("B"), idx("C")),
                (idx("C"), idx("D")),
                (idx("D"), idx("E")),
            ],
        );
        let model = MinedModel::from_graph(chain);
        let report = check_conformance(&model, &log);
        assert!(!report.is_conformal());
        assert!(!report.inconsistent_executions.is_empty());
    }

    #[test]
    fn fitness_counts_violation_kinds() {
        let (model, log) = figure1();
        let mut mixed = WorkflowLog::with_activities(log.activities().clone());
        mixed.push(exec_of(&log, "ACBE")); // consistent
        mixed.push(exec_of(&log, "ABCDE")); // consistent (full)
        mixed.push(exec_of(&log, "ADBE")); // D unreachable
        mixed.push(exec_of(&log, "BACDE")); // wrong start + dependency

        let f = fitness(&model, &mixed);
        assert_eq!(f.executions, 4);
        assert_eq!(f.consistent, 2);
        assert_eq!(f.fraction(), 0.5);
        // ADBE: D unreachable from A. BACDE: reachability is taken from
        // the observed first activity B, so A, C, D all count.
        assert_eq!(f.unreachable, 4);
        assert!(f.wrong_endpoints >= 1);
        assert!(f.dependency_violated >= 1);
    }

    #[test]
    fn fitness_of_empty_log_is_one() {
        let (model, _) = figure1();
        let empty = WorkflowLog::new();
        // An empty log over a different table: check_execution is never
        // called, so the table mismatch is irrelevant.
        let f = fitness(&model, &empty);
        assert_eq!(f.fraction(), 1.0);
    }

    #[test]
    fn cyclic_model_pairs_in_scc_not_flagged() {
        use crate::mine_cyclic;
        let log = WorkflowLog::from_strings(["ABDCE", "ABDCBCE", "ABCBDCE", "ADE"]).unwrap();
        let model = mine_cyclic(&log, &MinerOptions::default()).unwrap();
        let report = check_conformance(&model, &log);
        // B and C cycle: they are independent by Definition 4 but the
        // mutual paths must not be flagged as spurious.
        assert!(!report
            .spurious_dependencies
            .iter()
            .any(|(a, b)| (a == "B" && b == "C") || (a == "C" && b == "B")));
    }
}
