//! Online mining: an [`IncrementalMiner`] driven by a live event
//! stream, with snapshot cadence.
//!
//! The incremental miner already keeps the expensive step-2 ordering
//! counts up to date per absorbed execution; what a `--follow` session
//! adds is *when to look*: emit a conformal model snapshot every N
//! absorbed events, or on demand. [`OnlineMiner`] wraps the miner with
//! that cadence. Edge-support frequencies are preserved — a snapshot
//! after k executions equals batch-mining those k executions (the
//! `--follow` parity tests pin this, edges and support counts both).

use crate::session::MineSession;
use crate::telemetry::MetricsSink;
use crate::{IncrementalMiner, MineError, MinedModel, MinerOptions};
use procmine_log::{ActivityTable, Execution};

/// When an [`OnlineMiner`] considers a snapshot due.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnapshotPolicy {
    /// Snapshot after at least this many newly absorbed activity
    /// instances (events). `None`: only on demand / at end of stream.
    pub every_events: Option<u64>,
}

impl SnapshotPolicy {
    /// A policy snapshotting every `n` absorbed events.
    pub fn every(n: u64) -> Self {
        SnapshotPolicy {
            every_events: Some(n),
        }
    }

    /// A policy that only snapshots on demand.
    pub fn on_demand() -> Self {
        SnapshotPolicy { every_events: None }
    }
}

/// An [`IncrementalMiner`] plus snapshot cadence — the consumer end of
/// a `procmine mine --follow` pipeline. Executions come in as they
/// complete out of the event stream (see
/// `procmine_log::stream::CaseAssembler`); the driver asks
/// [`OnlineMiner::snapshot_due`] after each absorb and materializes a
/// model through [`OnlineMiner::snapshot_in`] when it is.
#[derive(Debug, Clone)]
pub struct OnlineMiner {
    pub(crate) inner: IncrementalMiner,
    policy: SnapshotPolicy,
    /// Events absorbed since the last snapshot (or the start).
    pub(crate) events_since_snapshot: u64,
    pub(crate) events_absorbed: u64,
    pub(crate) snapshots_taken: u64,
}

impl OnlineMiner {
    /// Creates an empty online miner.
    pub fn new(options: MinerOptions, policy: SnapshotPolicy) -> Self {
        OnlineMiner {
            inner: IncrementalMiner::new(options),
            policy,
            events_since_snapshot: 0,
            events_absorbed: 0,
            snapshots_taken: 0,
        }
    }

    /// Assembles a resumed miner from validated parts (the
    /// [`crate::checkpoint`] module's constructor).
    pub(crate) fn resume_parts(
        inner: IncrementalMiner,
        policy: SnapshotPolicy,
        events_absorbed: u64,
        events_since_snapshot: u64,
        snapshots_taken: u64,
    ) -> Self {
        OnlineMiner {
            inner,
            policy,
            events_since_snapshot,
            events_absorbed,
            snapshots_taken,
        }
    }

    /// Absorbs one completed execution. Returns `true` if the cadence
    /// policy now wants a snapshot. Errors leave the miner untouched
    /// (same guarantee as [`IncrementalMiner::absorb_execution`]).
    pub fn absorb(
        &mut self,
        exec: &Execution,
        source_table: &ActivityTable,
    ) -> Result<bool, MineError> {
        self.inner.absorb_execution(exec, source_table)?;
        self.events_since_snapshot += exec.len() as u64;
        self.events_absorbed += exec.len() as u64;
        Ok(self.snapshot_due())
    }

    /// `true` when the cadence policy wants a snapshot.
    pub fn snapshot_due(&self) -> bool {
        match self.policy.every_events {
            Some(n) => self.events_since_snapshot >= n,
            None => false,
        }
    }

    /// Produces the current model and resets the snapshot cadence.
    /// Errors if nothing has been absorbed yet.
    pub fn snapshot(&mut self) -> Result<MinedModel, MineError> {
        self.snapshot_in(&mut MineSession::new())
    }

    /// [`OnlineMiner::snapshot`] inside a [`MineSession`]: the
    /// finishing steps are metered, traced, and deadline-budgeted like
    /// any other pipeline run.
    pub fn snapshot_in<S: MetricsSink>(
        &mut self,
        session: &mut MineSession<S>,
    ) -> Result<MinedModel, MineError> {
        let model = self.inner.model_in(session)?;
        self.events_since_snapshot = 0;
        self.snapshots_taken += 1;
        Ok(model)
    }

    /// Executions absorbed so far.
    pub fn executions(&self) -> usize {
        self.inner.executions()
    }

    /// Activity instances absorbed so far.
    pub fn events_absorbed(&self) -> u64 {
        self.events_absorbed
    }

    /// Snapshots materialized so far.
    pub fn snapshots_taken(&self) -> u64 {
        self.snapshots_taken
    }

    /// The activity table accumulated so far.
    pub fn activities(&self) -> &ActivityTable {
        self.inner.activities()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use procmine_log::WorkflowLog;

    fn absorb_log(miner: &mut OnlineMiner, log: &WorkflowLog) -> Vec<bool> {
        log.executions()
            .iter()
            .map(|e| miner.absorb(e, log.activities()).unwrap())
            .collect()
    }

    #[test]
    fn cadence_fires_every_n_events_and_resets() {
        let log = WorkflowLog::from_strings(["ABC", "ABC", "ABC"]).unwrap();
        let mut miner = OnlineMiner::new(MinerOptions::default(), SnapshotPolicy::every(5));
        let due = absorb_log(&mut miner, &log);
        // 3, then 6 events: due after the second execution.
        assert_eq!(due[..2], [false, true]);
        miner.snapshot().unwrap();
        assert!(!miner.snapshot_due(), "snapshot resets the cadence");
        assert_eq!(miner.snapshots_taken(), 1);
        assert_eq!(miner.events_absorbed(), 9);
    }

    #[test]
    fn on_demand_policy_never_fires() {
        let log = WorkflowLog::from_strings(["ABC"]).unwrap();
        let mut miner = OnlineMiner::new(MinerOptions::default(), SnapshotPolicy::on_demand());
        assert_eq!(absorb_log(&mut miner, &log), [false]);
    }

    #[test]
    fn snapshot_matches_batch_model() {
        let log = WorkflowLog::from_strings(["ABCE", "ACDE", "ABCDE"]).unwrap();
        let mut miner = OnlineMiner::new(MinerOptions::default(), SnapshotPolicy::every(1));
        absorb_log(&mut miner, &log);
        let online = miner.snapshot().unwrap();
        let batch = crate::mine_general_dag(&log, &MinerOptions::default()).unwrap();
        assert_eq!(online.edges_named(), batch.edges_named());
    }

    #[test]
    fn snapshot_of_empty_miner_errors() {
        let mut miner = OnlineMiner::new(MinerOptions::default(), SnapshotPolicy::on_demand());
        assert!(miner.snapshot().is_err());
    }

    #[test]
    fn cadence_shorter_than_one_execution_fires_every_absorb() {
        // every_events smaller than a single execution's length: the
        // counter overshoots in one step. It must fire immediately and
        // reset cleanly each time, not wedge or wrap.
        let log = WorkflowLog::from_strings(["ABCDE", "ABCDE", "ABCDE"]).unwrap();
        let mut miner = OnlineMiner::new(MinerOptions::default(), SnapshotPolicy::every(2));
        for exec in log.executions() {
            assert!(
                miner.absorb(exec, log.activities()).unwrap(),
                "5 events >= cadence 2: due after every absorb"
            );
            miner.snapshot().unwrap();
            assert!(!miner.snapshot_due(), "reset survives the overshoot");
        }
        assert_eq!(miner.snapshots_taken(), 3);
        assert_eq!(miner.events_absorbed(), 15);
    }
}
