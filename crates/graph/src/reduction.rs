//! Transitive reduction of directed acyclic graphs.
//!
//! The paper's Appendix A (Algorithm 4, "TR") computes the unique
//! transitive reduction of a DAG by visiting vertices in reverse
//! topological order and maintaining, per vertex, the bitset of its
//! descendants:
//!
//! 1. find a topological ordering;
//! 2. for each vertex `v` in reverse topological order:
//!    a. `desc(v) = ⋃ desc(s)` over the successors `s` of `v`;
//!    b. drop every successor of `v` that is already in `desc(v)`
//!    (Lemma 7: an edge is in the reduction iff there is no *other*
//!    path between its endpoints);
//!    c. add the surviving successors to `desc(v)`.
//!
//! This runs in O(|V||E|) time — with bitsets, O(|E|·|V|/64) words.
//! [`transitive_reduction_naive`] is the per-edge-DFS reference used to
//! cross-check it in tests and as the baseline of ablation A1.

use crate::budget::Budget;
use crate::topo::topological_sort;
use crate::{AdjMatrix, BitSet, DiGraph, GraphError, NodeId};
use std::collections::VecDeque;

/// Computes the transitive reduction of the DAG `g` (Appendix A,
/// Algorithm 4). Payloads are preserved. Returns
/// [`GraphError::CycleDetected`] if `g` is not acyclic — a DAG has a
/// unique reduction, a cyclic graph does not.
pub fn transitive_reduction_dag<N: Clone>(g: &DiGraph<N>) -> Result<DiGraph<N>, GraphError> {
    let order = topological_sort(g)?;
    let n = g.node_count();
    let mut desc: Vec<BitSet> = vec![BitSet::new(n); n];
    let mut reduced = g.map(|_, p| p.clone());

    for &v in order.iter().rev() {
        let vi = v.index();
        // (a) union the descendants of all current successors.
        let mut dv = BitSet::new(n);
        for &s in g.successors(v) {
            dv.union_with(&desc[s.index()]);
        }
        // (b) an edge (v, s) is redundant iff s is reachable through a
        // different successor.
        for &s in g.successors(v) {
            if dv.contains(s.index()) {
                reduced.remove_edge(v, s);
            }
        }
        // (c) surviving successors are also descendants.
        for &s in reduced.successors(v) {
            dv.insert(s.index());
        }
        desc[vi] = dv;
    }
    Ok(reduced)
}

/// Transitive reduction of a DAG given as an [`AdjMatrix`]. Same
/// algorithm as [`transitive_reduction_dag`], operating on bitset rows
/// directly; used in the miners' inner loops.
pub fn transitive_reduction_matrix(m: &AdjMatrix) -> Result<AdjMatrix, GraphError> {
    transitive_reduction_matrix_budgeted(m, &Budget::unlimited())
}

/// [`transitive_reduction_matrix`] under a wall-clock [`Budget`]: the
/// budget is re-checked once per vertex of the reverse-topological
/// descent — and periodically inside the topological-sort setup, which
/// is itself O(|E|) — so a run overstays its deadline by at most one
/// vertex's row work. Returns [`GraphError::BudgetExhausted`] when it
/// fires.
pub fn transitive_reduction_matrix_budgeted(
    m: &AdjMatrix,
    budget: &Budget,
) -> Result<AdjMatrix, GraphError> {
    let order = topo_order_matrix_budgeted(m, budget)?;
    let n = m.node_count();
    let mut desc: Vec<BitSet> = vec![BitSet::new(n); n];
    let mut reduced = m.clone();

    for &vi in order.iter().rev() {
        budget.check()?;
        let mut dv = BitSet::new(n);
        for s in m.successors(vi) {
            dv.union_with(&desc[s]);
        }
        for s in m.successors(vi) {
            if dv.contains(s) {
                reduced.remove_edge(vi, s);
            }
        }
        for s in reduced.successors(vi) {
            dv.insert(s);
        }
        desc[vi] = dv;
    }
    Ok(reduced)
}

/// Kahn's algorithm directly on an [`AdjMatrix`], under a [`Budget`]:
/// checked once per row while counting in-degrees and every 64 dequeued
/// vertices thereafter. Avoids materializing an intermediate
/// [`DiGraph`], whose O(|E|) construction would run ahead of the first
/// budget check. Ties break by vertex id, matching
/// [`topological_sort`].
fn topo_order_matrix_budgeted(m: &AdjMatrix, budget: &Budget) -> Result<Vec<usize>, GraphError> {
    let n = m.node_count();
    let mut in_deg = vec![0usize; n];
    for u in 0..n {
        budget.check()?;
        for v in m.successors(u) {
            in_deg[v] += 1;
        }
    }
    let mut queue: VecDeque<usize> = (0..n).filter(|&v| in_deg[v] == 0).collect();
    let mut order = Vec::with_capacity(n);
    let mut ticks = 0u32;
    while let Some(u) = queue.pop_front() {
        ticks = ticks.wrapping_add(1);
        if ticks & 0x3F == 0 {
            budget.check()?;
        }
        order.push(u);
        for v in m.successors(u) {
            in_deg[v] -= 1;
            if in_deg[v] == 0 {
                queue.push_back(v);
            }
        }
    }
    if order.len() == n {
        Ok(order)
    } else {
        let node = (0..n).find(|&i| in_deg[i] > 0).unwrap_or(0);
        Err(GraphError::CycleDetected { node })
    }
}

/// Naive O(|E|·(|V|+|E|)) transitive reduction: for each edge `(u, v)`,
/// run a DFS from `u` that avoids the direct edge and remove `(u, v)` if
/// `v` is still reachable. Reference implementation for tests and the
/// ablation benchmark.
pub fn transitive_reduction_naive<N: Clone>(g: &DiGraph<N>) -> Result<DiGraph<N>, GraphError> {
    topological_sort(g)?;
    let mut reduced = g.map(|_, p| p.clone());
    for (u, v) in g.edges() {
        if reachable_avoiding(g, u, v) {
            reduced.remove_edge(u, v);
        }
    }
    Ok(reduced)
}

/// DFS from `u` to `v` that may not take the direct edge `(u, v)` as its
/// first step.
fn reachable_avoiding<N>(g: &DiGraph<N>, u: NodeId, v: NodeId) -> bool {
    let mut seen = BitSet::new(g.node_count());
    let mut stack: Vec<NodeId> = g
        .successors(u)
        .iter()
        .copied()
        .filter(|&s| s != v)
        .collect();
    for s in &stack {
        seen.insert(s.index());
    }
    while let Some(w) = stack.pop() {
        if w == v {
            return true;
        }
        for &x in g.successors(w) {
            if seen.insert(x.index()) {
                if x == v {
                    return true;
                }
                stack.push(x);
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reach::transitive_closure;

    #[test]
    fn removes_shortcut_edge() {
        let g = DiGraph::from_edges(vec![(); 3], [(0, 1), (1, 2), (0, 2)]);
        let tr = transitive_reduction_dag(&g).unwrap();
        assert_eq!(tr.edge_count(), 2);
        assert!(!tr.has_edge(NodeId::new(0), NodeId::new(2)));
    }

    #[test]
    fn preserves_closure() {
        let g = DiGraph::from_edges(
            vec![(); 6],
            [
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 3),
                (2, 3),
                (1, 4),
                (3, 4),
                (0, 4),
                (4, 5),
                (0, 5),
            ],
        );
        let tr = transitive_reduction_dag(&g).unwrap();
        assert_eq!(transitive_closure(&g), transitive_closure(&tr));
        assert!(tr.edge_count() < g.edge_count());
    }

    #[test]
    fn paper_example_6() {
        // Log {ABCDE, ACDBE, ACBDE}: after two-cycle removal the
        // ordering graph has edges A→{B,C,D,E}, B→E, C→{D,E}, D→E
        // (B is independent of C and D). TR keeps A→B, A→C, B→E, C→D,
        // D→E — the process graph of Figure 3. A=0 B=1 C=2 D=3 E=4.
        let g = DiGraph::from_edges(
            vec![(); 5],
            [
                (0, 1),
                (0, 2),
                (0, 3),
                (0, 4),
                (1, 4),
                (2, 3),
                (2, 4),
                (3, 4),
            ],
        );
        let tr = transitive_reduction_dag(&g).unwrap();
        let edges: Vec<_> = tr.edges().map(|(u, v)| (u.index(), v.index())).collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 4), (2, 3), (3, 4)]);
    }

    #[test]
    fn matrix_and_digraph_agree() {
        let g = DiGraph::from_edges(
            vec![(); 7],
            [
                (0, 1),
                (0, 2),
                (1, 3),
                (2, 3),
                (0, 3),
                (3, 4),
                (1, 4),
                (4, 5),
                (5, 6),
                (3, 6),
            ],
        );
        let tr_g = transitive_reduction_dag(&g).unwrap();
        let tr_m = transitive_reduction_matrix(&AdjMatrix::from_digraph(&g)).unwrap();
        assert_eq!(AdjMatrix::from_digraph(&tr_g), tr_m);
    }

    #[test]
    fn naive_and_fast_agree() {
        let g = DiGraph::from_edges(
            vec![(); 8],
            [
                (0, 1),
                (0, 2),
                (0, 5),
                (1, 3),
                (2, 3),
                (3, 4),
                (0, 4),
                (1, 4),
                (5, 6),
                (6, 7),
                (5, 7),
                (4, 7),
            ],
        );
        let fast = transitive_reduction_dag(&g).unwrap();
        let naive = transitive_reduction_naive(&g).unwrap();
        assert_eq!(
            fast.edges().collect::<Vec<_>>(),
            naive.edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn rejects_cycles() {
        let g = DiGraph::from_edges(vec![(); 2], [(0, 1), (1, 0)]);
        assert!(transitive_reduction_dag(&g).is_err());
        assert!(transitive_reduction_naive(&g).is_err());
    }

    #[test]
    fn reduction_of_reduction_is_identity() {
        let g = DiGraph::from_edges(
            vec![(); 5],
            [(0, 1), (0, 2), (1, 3), (2, 3), (0, 3), (3, 4), (0, 4)],
        );
        let tr = transitive_reduction_dag(&g).unwrap();
        let tr2 = transitive_reduction_dag(&tr).unwrap();
        assert_eq!(
            tr.edges().collect::<Vec<_>>(),
            tr2.edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn budgeted_matches_plain_when_unlimited() {
        let g = DiGraph::from_edges(
            vec![(); 5],
            [(0, 1), (0, 2), (1, 3), (2, 3), (0, 3), (3, 4), (0, 4)],
        );
        let m = AdjMatrix::from_digraph(&g);
        let plain = transitive_reduction_matrix(&m).unwrap();
        let budgeted = transitive_reduction_matrix_budgeted(&m, &Budget::unlimited()).unwrap();
        assert_eq!(plain, budgeted);
    }

    #[test]
    fn expired_budget_aborts_reduction() {
        use std::time::{Duration, Instant};
        let g = DiGraph::from_edges(vec![(); 3], [(0, 1), (1, 2), (0, 2)]);
        let m = AdjMatrix::from_digraph(&g);
        let budget = Budget::with_deadline(Instant::now() - Duration::from_millis(1));
        assert_eq!(
            transitive_reduction_matrix_budgeted(&m, &budget),
            Err(GraphError::BudgetExhausted)
        );
    }

    #[test]
    fn empty_and_edgeless() {
        let g: DiGraph<()> = DiGraph::new();
        assert_eq!(transitive_reduction_dag(&g).unwrap().edge_count(), 0);
        let g = DiGraph::from_edges(vec![(); 3], std::iter::empty());
        assert_eq!(transitive_reduction_dag(&g).unwrap().edge_count(), 0);
    }
}
