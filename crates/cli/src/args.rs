//! Minimal argument parsing: flags with values, positionals, and typed
//! lookups. Hand-rolled to keep the dependency surface to the crates
//! the workspace already uses.

use std::collections::HashMap;
use std::fmt;

/// A parsed command line: positional arguments plus `--flag value` /
/// `--switch` options.
#[derive(Debug, Default)]
pub struct Parsed {
    positional: Vec<String>,
    flags: HashMap<String, String>,
    switches: Vec<String>,
}

/// Argument errors.
#[derive(Debug)]
pub enum ArgError {
    /// A `--flag` that requires a value was last on the line.
    MissingValue(String),
    /// A flag was not recognized by the command.
    Unknown(String),
    /// A value could not be parsed.
    BadValue {
        /// Flag name.
        flag: String,
        /// Raw value.
        value: String,
        /// Expected type/kind.
        expected: &'static str,
    },
    /// A required flag or positional is absent.
    Required(&'static str),
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::MissingValue(flag) => write!(f, "flag --{flag} requires a value"),
            ArgError::Unknown(flag) => write!(f, "unknown flag --{flag}"),
            ArgError::BadValue {
                flag,
                value,
                expected,
            } => {
                write!(f, "--{flag}: `{value}` is not a valid {expected}")
            }
            ArgError::Required(what) => write!(f, "missing required {what}"),
        }
    }
}

impl std::error::Error for ArgError {}

/// Parses `argv` given the sets of value-taking flags and boolean
/// switches accepted by the command. Flags may be spelled `--name value`
/// or `--name=value`; `-o` is an alias for `--out`.
pub fn parse(
    argv: &[String],
    value_flags: &[&str],
    switch_flags: &[&str],
) -> Result<Parsed, ArgError> {
    let mut parsed = Parsed::default();
    let mut i = 0;
    while i < argv.len() {
        let arg = &argv[i];
        if let Some(stripped) = arg.strip_prefix("--") {
            let (name, inline) = match stripped.split_once('=') {
                Some((n, v)) => (n.to_string(), Some(v.to_string())),
                None => (stripped.to_string(), None),
            };
            if switch_flags.contains(&name.as_str()) {
                parsed.switches.push(name);
            } else if value_flags.contains(&name.as_str()) {
                let value = match inline {
                    Some(v) => v,
                    None => {
                        i += 1;
                        argv.get(i)
                            .cloned()
                            .ok_or_else(|| ArgError::MissingValue(name.clone()))?
                    }
                };
                parsed.flags.insert(name, value);
            } else {
                return Err(ArgError::Unknown(name));
            }
        } else if arg == "-o" {
            i += 1;
            let value = argv
                .get(i)
                .cloned()
                .ok_or_else(|| ArgError::MissingValue("out".into()))?;
            parsed.flags.insert("out".into(), value);
        } else {
            parsed.positional.push(arg.clone());
        }
        i += 1;
    }
    Ok(parsed)
}

impl Parsed {
    /// Positional arguments in order.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// The value of a flag, if given.
    pub fn get(&self, flag: &str) -> Option<&str> {
        self.flags.get(flag).map(String::as_str)
    }

    /// `true` if the switch was given.
    pub fn has(&self, switch: &str) -> bool {
        self.switches.iter().any(|s| s == switch)
    }

    /// Typed flag lookup with a default.
    pub fn get_parse<T: std::str::FromStr>(
        &self,
        flag: &str,
        default: T,
        expected: &'static str,
    ) -> Result<T, ArgError> {
        match self.get(flag) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError::BadValue {
                flag: flag.to_string(),
                value: v.to_string(),
                expected,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn parses_flags_switches_positionals() {
        let p = parse(
            &argv(&["log.fm", "--threshold", "3", "--check", "--format=seqs"]),
            &["threshold", "format"],
            &["check"],
        )
        .unwrap();
        assert_eq!(p.positional(), &["log.fm"]);
        assert_eq!(p.get("threshold"), Some("3"));
        assert_eq!(p.get("format"), Some("seqs"));
        assert!(p.has("check"));
        assert!(!p.has("verbose"));
        assert_eq!(p.get_parse("threshold", 1u32, "integer").unwrap(), 3);
        assert_eq!(p.get_parse("missing", 7u32, "integer").unwrap(), 7);
    }

    #[test]
    fn short_o_aliases_out() {
        let p = parse(&argv(&["-o", "file.txt"]), &["out"], &[]).unwrap();
        assert_eq!(p.get("out"), Some("file.txt"));
    }

    #[test]
    fn errors() {
        assert!(matches!(
            parse(&argv(&["--nope"]), &[], &[]),
            Err(ArgError::Unknown(_))
        ));
        assert!(matches!(
            parse(&argv(&["--threshold"]), &["threshold"], &[]),
            Err(ArgError::MissingValue(_))
        ));
        let p = parse(&argv(&["--threshold", "abc"]), &["threshold"], &[]).unwrap();
        assert!(matches!(
            p.get_parse("threshold", 1u32, "integer"),
            Err(ArgError::BadValue { .. })
        ));
    }
}
