//! Dense bit-matrix directed graph.
//!
//! The mining algorithms' step 2 ("for each pair of activities u, v such
//! that u terminates before v starts, add the edge (u, v)") touches up to
//! n² candidate edges per execution, and steps 3–4 remove edges in bulk.
//! A dense adjacency matrix makes every one of these operations an O(1)
//! bit operation (or an O(n/64) row operation), which is what lets the
//! miners hit the paper's O(n²m) bound with a small constant.

use crate::{BitSet, DiGraph, NodeId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A directed graph over nodes `0..n` stored as a boolean adjacency
/// matrix with bitset rows.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdjMatrix {
    n: usize,
    rows: Vec<BitSet>,
    edge_count: usize,
}

impl AdjMatrix {
    /// Creates an edgeless graph with `n` nodes.
    pub fn new(n: usize) -> Self {
        AdjMatrix {
            n,
            rows: vec![BitSet::new(n); n],
            edge_count: 0,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Adds edge `(u, v)`; returns `true` if newly added.
    #[inline]
    pub fn add_edge(&mut self, u: usize, v: usize) -> bool {
        let added = self.rows[u].insert(v);
        self.edge_count += added as usize;
        added
    }

    /// Removes edge `(u, v)`; returns `true` if it was present.
    #[inline]
    pub fn remove_edge(&mut self, u: usize, v: usize) -> bool {
        let removed = self.rows[u].remove(v);
        self.edge_count -= removed as usize;
        removed
    }

    /// Tests edge `(u, v)`.
    #[inline]
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.rows[u].contains(v)
    }

    /// The out-neighbour set of `u` as a bitset row.
    pub fn row(&self, u: usize) -> &BitSet {
        &self.rows[u]
    }

    /// Iterates the out-neighbours of `u` in increasing order.
    pub fn successors(&self, u: usize) -> impl Iterator<Item = usize> + '_ {
        self.rows[u].iter()
    }

    /// Iterates all edges in lexicographic order.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.n).flat_map(move |u| self.rows[u].iter().map(move |v| (u, v)))
    }

    /// Removes every edge `(u, v)` where `(v, u)` is also present —
    /// step 3 of Algorithms 1–3 ("remove the edges that appear in both
    /// directions"). Self-loops count as their own reverse and are
    /// removed. Returns the number of edges removed.
    pub fn remove_two_cycles(&mut self) -> usize {
        let mut removed = 0;
        for u in 0..self.n {
            // Collect first: we mutate rows[u] and rows[v] as we go.
            let both: Vec<usize> = self.rows[u].iter().filter(|&v| v >= u).collect();
            for v in both {
                if u == v {
                    self.remove_edge(u, u);
                    removed += 1;
                } else if self.rows[v].contains(u) {
                    self.remove_edge(u, v);
                    self.remove_edge(v, u);
                    removed += 2;
                }
            }
        }
        removed
    }

    /// Converts to a [`DiGraph`] with payloads produced by `f`.
    pub fn to_digraph<N>(&self, mut f: impl FnMut(usize) -> N) -> DiGraph<N> {
        let mut g = DiGraph::with_capacity(self.n);
        for i in 0..self.n {
            g.add_node(f(i));
        }
        for (u, v) in self.edges() {
            g.add_edge(NodeId::new(u), NodeId::new(v));
        }
        g
    }

    /// Builds a matrix from any `DiGraph`, discarding payloads.
    pub fn from_digraph<N>(g: &DiGraph<N>) -> Self {
        let mut m = AdjMatrix::new(g.node_count());
        for (u, v) in g.edges() {
            m.add_edge(u.index(), v.index());
        }
        m
    }
}

impl fmt::Debug for AdjMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "AdjMatrix ({} nodes, {} edges)", self.n, self.edge_count)?;
        for u in 0..self.n {
            if !self.rows[u].is_empty() {
                writeln!(f, "  {} -> {:?}", u, self.rows[u])?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_remove_has() {
        let mut m = AdjMatrix::new(5);
        assert!(m.add_edge(0, 1));
        assert!(!m.add_edge(0, 1));
        assert!(m.has_edge(0, 1));
        assert!(!m.has_edge(1, 0));
        assert_eq!(m.edge_count(), 1);
        assert!(m.remove_edge(0, 1));
        assert!(!m.remove_edge(0, 1));
        assert_eq!(m.edge_count(), 0);
    }

    #[test]
    fn remove_two_cycles_removes_only_mutual_pairs() {
        let mut m = AdjMatrix::new(4);
        m.add_edge(0, 1);
        m.add_edge(1, 0); // mutual pair — both go
        m.add_edge(1, 2); // one-way — stays
        m.add_edge(2, 3);
        m.add_edge(3, 2); // mutual pair — both go
        let removed = m.remove_two_cycles();
        assert_eq!(removed, 4);
        assert_eq!(m.edges().collect::<Vec<_>>(), vec![(1, 2)]);
    }

    #[test]
    fn remove_two_cycles_removes_self_loops() {
        let mut m = AdjMatrix::new(2);
        m.add_edge(0, 0);
        m.add_edge(0, 1);
        assert_eq!(m.remove_two_cycles(), 1);
        assert!(!m.has_edge(0, 0));
        assert!(m.has_edge(0, 1));
    }

    #[test]
    fn digraph_round_trip() {
        let mut m = AdjMatrix::new(3);
        m.add_edge(0, 2);
        m.add_edge(1, 2);
        let g = m.to_digraph(|i| i);
        assert_eq!(g.node_count(), 3);
        assert!(g.has_edge(NodeId::new(0), NodeId::new(2)));
        let back = AdjMatrix::from_digraph(&g);
        assert_eq!(back, m);
    }

    #[test]
    fn edges_in_lexicographic_order() {
        let mut m = AdjMatrix::new(3);
        m.add_edge(2, 0);
        m.add_edge(0, 1);
        m.add_edge(0, 2);
        assert_eq!(m.edges().collect::<Vec<_>>(), vec![(0, 1), (0, 2), (2, 0)]);
    }
}
