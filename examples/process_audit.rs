//! A process-audit report: everything the library can say about a log.
//!
//! Plays the role of an analyst handed an XES event log exported from a
//! workflow system: parse it, profile it, mine the control-flow model,
//! verify the model against the log, classify the branch points, and
//! compute route analytics — the "evaluation of the workflow system"
//! application from the paper's introduction.
//!
//! ```sh
//! cargo run --example process_audit
//! ```

use procmine::graph::paths;
use procmine::log::codec::xes;
use procmine::log::stats::log_stats;
use procmine::mine::conformance::{check_conformance, fitness};
use procmine::mine::splits::analyze_gateways;
use procmine::mine::{mine_auto, MinerOptions};
use procmine::sim::{engine, presets};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Stand-in for "an XES file from the wild": simulate the order
    // process with overlapping multi-agent execution, export XES, and
    // pretend we only have the file.
    let process = presets::order_fulfillment();
    let cfg = engine::EngineConfig {
        duration: engine::DurationSpec::Uniform(60_000, 600_000), // 1-10 min
        agents: 3,
    };
    let mut rng = StdRng::seed_from_u64(2026);
    let original = engine::generate_log_with(&process, 250, &cfg, &mut rng)?;
    let mut xes_bytes = Vec::new();
    xes::write_log(&original, &mut xes_bytes)?;
    println!("received XES log: {} KB", xes_bytes.len() / 1024);

    // 1. Parse and profile.
    let log = xes::read_log(xes_bytes.as_slice())?;
    let stats = log_stats(&log);
    println!("\n== profile");
    println!(
        "cases: {}   activities: {}   events: ~{}",
        stats.executions,
        stats.activities,
        2 * stats.total_instances
    );
    println!(
        "case length: min {} / avg {:.1} / max {}   distinct variants: {}",
        stats.min_len, stats.mean_len, stats.max_len, stats.distinct_sequences
    );

    // 2. Mine the model.
    let (model, algorithm) = mine_auto(&log, &MinerOptions::default())?;
    println!("\n== mined model ({algorithm:?})");
    for (u, v) in model.edges_named() {
        println!("  {u} -> {v}");
    }

    // 3. Verify: conformance (Definition 7) and replay fitness.
    let report = check_conformance(&model, &log);
    let fit = fitness(&model, &log);
    println!("\n== verification");
    println!("conformal: {}", report.is_conformal());
    println!(
        "replay fitness: {:.3} ({} of {} cases consistent)",
        fit.fraction(),
        fit.consistent,
        fit.executions
    );

    // 4. Branch-point semantics.
    println!("\n== gateways");
    let gateways = analyze_gateways(&model, &log);
    for gw in &gateways.splits {
        println!(
            "  split at {:<8} {}  over {{{}}}",
            gw.activity,
            gw.kind,
            gw.branches.join(", ")
        );
    }
    for gw in &gateways.joins {
        println!(
            "  join at  {:<8} {}  over {{{}}}",
            gw.activity,
            gw.kind,
            gw.branches.join(", ")
        );
    }

    // 5. Route analytics.
    let g = model.graph();
    if let (&[source], &[sink]) = (&g.sources()[..], &g.sinks()[..]) {
        println!("\n== routes");
        println!("distinct routes: {}", paths::count_paths(g, source, sink)?);
        if let Some(critical) = paths::longest_path(g, source, sink)? {
            let names: Vec<&str> = critical.iter().map(|&v| g.node(v).as_str()).collect();
            println!("critical path:   {}", names.join(" -> "));
        }
        for (i, route) in paths::all_simple_paths(g, source, sink, 5)
            .iter()
            .enumerate()
        {
            let names: Vec<&str> = route.iter().map(|&v| g.node(v).as_str()).collect();
            println!("route {}: {}", i + 1, names.join(" -> "));
        }
    }
    Ok(())
}
