//! A node-labelled directed graph with stable integer node ids.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node in a [`DiGraph`] or [`crate::AdjMatrix`].
///
/// Ids are dense indices assigned in insertion order; they are never
/// reused or invalidated (nodes cannot be removed, matching the paper's
/// setting where the activity set only grows while scanning the log).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Creates a node id from a raw index.
    ///
    /// # Panics
    /// If `index` does not fit in `u32` — a graph with more than 4
    /// billion nodes is far past every other limit in the pipeline.
    #[allow(clippy::expect_used)] // documented invariant, not a recoverable error
    pub fn new(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index exceeds u32::MAX"))
    }

    /// The raw index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A directed graph whose nodes carry a payload `N`.
///
/// Edges are unweighted and stored in both directions (out- and
/// in-adjacency), kept sorted so that `has_edge` is a binary search and
/// edge iteration is deterministic. Parallel edges are not representable:
/// `add_edge` is idempotent. Self-loops are allowed (Algorithm 3 can
/// produce them when merging instance vertices of a tight cycle).
#[derive(Clone, Serialize, Deserialize)]
pub struct DiGraph<N> {
    nodes: Vec<N>,
    out: Vec<Vec<NodeId>>,
    inn: Vec<Vec<NodeId>>,
    edge_count: usize,
}

impl<N> Default for DiGraph<N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<N> DiGraph<N> {
    /// Creates an empty graph.
    pub fn new() -> Self {
        DiGraph {
            nodes: Vec::new(),
            out: Vec::new(),
            inn: Vec::new(),
            edge_count: 0,
        }
    }

    /// Creates an empty graph with room for `nodes` nodes.
    pub fn with_capacity(nodes: usize) -> Self {
        DiGraph {
            nodes: Vec::with_capacity(nodes),
            out: Vec::with_capacity(nodes),
            inn: Vec::with_capacity(nodes),
            edge_count: 0,
        }
    }

    /// Adds a node with the given payload and returns its id.
    pub fn add_node(&mut self, payload: N) -> NodeId {
        let id = NodeId::new(self.nodes.len());
        self.nodes.push(payload);
        self.out.push(Vec::new());
        self.inn.push(Vec::new());
        id
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// The payload of `id`. Panics if `id` is not in this graph.
    pub fn node(&self, id: NodeId) -> &N {
        &self.nodes[id.index()]
    }

    /// Mutable access to the payload of `id`.
    pub fn node_mut(&mut self, id: NodeId) -> &mut N {
        &mut self.nodes[id.index()]
    }

    /// Iterates all node ids in increasing order.
    pub fn node_ids(&self) -> impl DoubleEndedIterator<Item = NodeId> + Clone + '_ {
        (0..self.nodes.len()).map(NodeId::new)
    }

    /// Iterates `(id, payload)` pairs in id order.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &N)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId::new(i), n))
    }

    /// Adds the edge `(from, to)`; returns `true` if it was newly added.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) -> bool {
        assert!(from.index() < self.nodes.len(), "`from` not in graph");
        assert!(to.index() < self.nodes.len(), "`to` not in graph");
        match self.out[from.index()].binary_search(&to) {
            Ok(_) => false,
            Err(pos) => {
                self.out[from.index()].insert(pos, to);
                // out and inn are maintained in lockstep: an edge absent
                // from one is absent from the other.
                #[allow(clippy::expect_used)]
                let ipos = self.inn[to.index()]
                    .binary_search(&from)
                    .expect_err("in/out adjacency out of sync");
                self.inn[to.index()].insert(ipos, from);
                self.edge_count += 1;
                true
            }
        }
    }

    /// Removes the edge `(from, to)`; returns `true` if it was present.
    pub fn remove_edge(&mut self, from: NodeId, to: NodeId) -> bool {
        if from.index() >= self.nodes.len() || to.index() >= self.nodes.len() {
            return false;
        }
        match self.out[from.index()].binary_search(&to) {
            Ok(pos) => {
                self.out[from.index()].remove(pos);
                // add_edge/remove_edge maintain out and inn in lockstep,
                // so an edge present in one is present in the other.
                #[allow(clippy::expect_used)]
                let ipos = self.inn[to.index()]
                    .binary_search(&from)
                    .expect("in/out adjacency out of sync");
                self.inn[to.index()].remove(ipos);
                self.edge_count -= 1;
                true
            }
            Err(_) => false,
        }
    }

    /// Tests whether the edge `(from, to)` exists.
    pub fn has_edge(&self, from: NodeId, to: NodeId) -> bool {
        from.index() < self.nodes.len() && self.out[from.index()].binary_search(&to).is_ok()
    }

    /// The out-neighbours of `id`, in increasing id order.
    pub fn successors(&self, id: NodeId) -> &[NodeId] {
        &self.out[id.index()]
    }

    /// The in-neighbours of `id`, in increasing id order.
    pub fn predecessors(&self, id: NodeId) -> &[NodeId] {
        &self.inn[id.index()]
    }

    /// Out-degree of `id`.
    pub fn out_degree(&self, id: NodeId) -> usize {
        self.out[id.index()].len()
    }

    /// In-degree of `id`.
    pub fn in_degree(&self, id: NodeId) -> usize {
        self.inn[id.index()].len()
    }

    /// Iterates all edges `(from, to)` in lexicographic order.
    pub fn edges(&self) -> EdgeIter<'_> {
        EdgeIter {
            out: &self.out,
            from: 0,
            pos: 0,
        }
    }

    /// Nodes with in-degree 0 (the candidates for the process' initiating
    /// activity).
    pub fn sources(&self) -> Vec<NodeId> {
        self.node_ids()
            .filter(|&v| self.in_degree(v) == 0)
            .collect()
    }

    /// Nodes with out-degree 0 (the candidates for the terminating
    /// activity).
    pub fn sinks(&self) -> Vec<NodeId> {
        self.node_ids()
            .filter(|&v| self.out_degree(v) == 0)
            .collect()
    }

    /// Builds a graph from a node-payload list and an edge list of raw
    /// indices. Panics if any index is out of range.
    pub fn from_edges<I>(payloads: Vec<N>, edges: I) -> Self
    where
        I: IntoIterator<Item = (usize, usize)>,
    {
        let mut g = DiGraph::with_capacity(payloads.len());
        for p in payloads {
            g.add_node(p);
        }
        for (u, v) in edges {
            g.add_edge(NodeId::new(u), NodeId::new(v));
        }
        g
    }

    /// Maps node payloads, preserving ids and edges.
    pub fn map<M>(&self, mut f: impl FnMut(NodeId, &N) -> M) -> DiGraph<M> {
        DiGraph {
            nodes: self
                .nodes
                .iter()
                .enumerate()
                .map(|(i, n)| f(NodeId::new(i), n))
                .collect(),
            out: self.out.clone(),
            inn: self.inn.clone(),
            edge_count: self.edge_count,
        }
    }

    /// The graph with every edge reversed (payloads preserved).
    pub fn reversed(&self) -> Self
    where
        N: Clone,
    {
        DiGraph {
            nodes: self.nodes.clone(),
            out: self.inn.clone(),
            inn: self.out.clone(),
            edge_count: self.edge_count,
        }
    }
}

impl<N: fmt::Debug> fmt::Debug for DiGraph<N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "DiGraph ({} nodes, {} edges)",
            self.node_count(),
            self.edge_count()
        )?;
        for (id, n) in self.nodes() {
            write!(f, "  {:?} {:?} ->", id, n)?;
            for s in self.successors(id) {
                write!(f, " {:?}", s)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Iterator over all edges of a [`DiGraph`], in lexicographic order.
pub struct EdgeIter<'a> {
    out: &'a [Vec<NodeId>],
    from: usize,
    pos: usize,
}

impl Iterator for EdgeIter<'_> {
    type Item = (NodeId, NodeId);

    fn next(&mut self) -> Option<Self::Item> {
        while self.from < self.out.len() {
            if self.pos < self.out[self.from].len() {
                let e = (NodeId::new(self.from), self.out[self.from][self.pos]);
                self.pos += 1;
                return Some(e);
            }
            self.from += 1;
            self.pos = 0;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (DiGraph<char>, [NodeId; 4]) {
        let mut g = DiGraph::new();
        let a = g.add_node('A');
        let b = g.add_node('B');
        let c = g.add_node('C');
        let d = g.add_node('D');
        g.add_edge(a, b);
        g.add_edge(a, c);
        g.add_edge(b, d);
        g.add_edge(c, d);
        (g, [a, b, c, d])
    }

    #[test]
    fn add_and_query_edges() {
        let (g, [a, b, c, d]) = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert!(g.has_edge(a, b) && g.has_edge(c, d));
        assert!(!g.has_edge(b, a) && !g.has_edge(a, d));
        assert_eq!(g.successors(a), &[b, c]);
        assert_eq!(g.predecessors(d), &[b, c]);
        assert_eq!(g.out_degree(a), 2);
        assert_eq!(g.in_degree(a), 0);
    }

    #[test]
    fn add_edge_is_idempotent() {
        let (mut g, [a, b, ..]) = diamond();
        assert!(!g.add_edge(a, b));
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn remove_edge_updates_both_directions() {
        let (mut g, [a, b, _, d]) = diamond();
        assert!(g.remove_edge(a, b));
        assert!(!g.remove_edge(a, b));
        assert_eq!(g.edge_count(), 3);
        assert!(!g.has_edge(a, b));
        assert_eq!(g.predecessors(b), &[] as &[NodeId]);
        assert_eq!(g.predecessors(d).len(), 2);
    }

    #[test]
    fn edges_iterate_lexicographically() {
        let (g, [a, b, c, d]) = diamond();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(a, b), (a, c), (b, d), (c, d)]);
    }

    #[test]
    fn sources_and_sinks() {
        let (g, [a, .., d]) = diamond();
        assert_eq!(g.sources(), vec![a]);
        assert_eq!(g.sinks(), vec![d]);
    }

    #[test]
    fn self_loop_allowed() {
        let mut g = DiGraph::new();
        let a = g.add_node(());
        assert!(g.add_edge(a, a));
        assert!(g.has_edge(a, a));
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.successors(a), &[a]);
        assert_eq!(g.predecessors(a), &[a]);
    }

    #[test]
    fn from_edges_and_map_and_reversed() {
        let g = DiGraph::from_edges(vec!["a", "b", "c"], [(0, 1), (1, 2)]);
        assert_eq!(g.edge_count(), 2);
        let mapped = g.map(|_, s| s.to_uppercase());
        assert_eq!(mapped.node(NodeId::new(0)), "A");
        assert_eq!(mapped.edge_count(), 2);
        let rev = g.reversed();
        assert!(rev.has_edge(NodeId::new(1), NodeId::new(0)));
        assert!(rev.has_edge(NodeId::new(2), NodeId::new(1)));
        assert_eq!(rev.edge_count(), 2);
    }

    #[test]
    fn empty_graph() {
        let g: DiGraph<()> = DiGraph::new();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.edges().count(), 0);
        assert!(g.sources().is_empty());
    }
}
