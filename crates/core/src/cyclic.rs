//! Algorithm 3 (Cyclic Graphs): general directed process graphs.
//!
//! Cycles make the DAG machinery break down: a legitimate loop and two
//! independent activities both produce orderings in both directions. The
//! paper's fix (§5) is *instance labeling*: the `i`-th occurrence of
//! activity `A` in an execution becomes its own vertex `Aᵢ`. The
//! Algorithm 2 pipeline then runs over instance vertices (where each
//! vertex occurs at most once per execution, restoring the DAG setting),
//! and a final step merges each activity's instances back into one
//! vertex, keeping an edge between two activities iff some pair of their
//! instances kept one. A `B₁→C₁, C₁→B₂` pattern thereby becomes the
//! cycle `B⇄C`.

use crate::general_dag::{mine_vertex_log, VertexLog};
use crate::model::graph_skeleton;
use crate::session::{run_stage, MineSession};
use crate::telemetry::{MetricsSink, Stage};
use crate::trace::Tracer;
use crate::{MineError, MinedModel, MinerOptions};
use procmine_graph::NodeId;
use procmine_log::{EventColumns, WorkflowLog};

/// Mines a process graph that may contain cycles (Algorithm 3). With
/// every activity repeating at most `k` times per execution, runs in
/// O((kn)³ m).
///
/// Edges between instances of the *same* activity (e.g. `B₁→B₂`) are
/// dropped by the merge step, per the paper ("we put an edge in the new
/// graph if there exists an edge between two vertices of *different*
/// equivalent sets"); immediate self-repetition `AA` therefore does not
/// produce a self-loop.
pub fn mine_cyclic(log: &WorkflowLog, options: &MinerOptions) -> Result<MinedModel, MineError> {
    mine_cyclic_in(&mut MineSession::new(), log, options)
}

/// [`mine_cyclic`] inside a [`MineSession`]: stage timings and counters
/// are recorded into the session's sink, spans into its tracer.
/// Instance labeling and lowering are timed as [`Stage::Lower`]; the
/// instance-merge step is part of [`Stage::Assemble`]. With
/// `threads > 1` the heavy pipeline stages fan out across threads.
pub fn mine_cyclic_in<S: MetricsSink>(
    session: &mut MineSession<S>,
    log: &WorkflowLog,
    options: &MinerOptions,
) -> Result<MinedModel, MineError> {
    let deadline = session.run_deadline(&options.limits);
    let threads = session.threads;
    let MineSession {
        sink,
        tracer,
        obs: reg,
        limits,
        ..
    } = session;
    let tracer: &Tracer = tracer;
    let reg: &crate::obs::Registry = reg;
    let _root = tracer.span_cat("mine.cyclic", "miner");
    if log.is_empty() {
        return Err(MineError::EmptyLog);
    }
    limits.check_log(log)?;
    options.limits.check_log(log)?;
    let n = log.activities().len();

    // Step 2 (of Algorithm 3): uniquely identify each occurrence.
    // Instance vertex space: activity a gets `max_occ[a]` consecutive
    // vertices starting at offset[a]. Lowering the log to instance
    // vertices (steps 1–3) is one pass.
    let (cols, activity_of, total) =
        run_stage(Stage::Lower, deadline, sink, tracer, reg, |_, _| {
            let mut max_occ = vec![0usize; n];
            for exec in log.executions() {
                deadline.check()?;
                let mut counts = vec![0usize; n];
                for a in exec.sequence() {
                    counts[a.index()] += 1;
                    max_occ[a.index()] = max_occ[a.index()].max(counts[a.index()]);
                }
            }
            let mut offset = vec![0usize; n + 1];
            for a in 0..n {
                offset[a + 1] = offset[a] + max_occ[a];
            }
            let total = offset[n];
            // Reverse map: instance vertex -> activity.
            let mut activity_of = vec![0usize; total];
            for a in 0..n {
                activity_of[offset[a]..offset[a + 1]].fill(a);
            }

            let events = log.executions().iter().map(|e| e.len()).sum();
            let mut cols = EventColumns::with_capacity(log.len(), events);
            for e in log.executions() {
                deadline.check()?;
                let labeled = e.labeled_sequence();
                cols.push_exec(e.instances().iter().zip(labeled).map(|(inst, (a, occ))| {
                    (
                        (offset[a.index()] + occ as usize) as u32,
                        inst.start,
                        inst.end,
                    )
                }));
            }
            Ok((cols, activity_of, total))
        })?;
    let vlog = VertexLog {
        n: total,
        cols: &cols,
    };

    // Steps 4–7: the shared pipeline.
    let result = mine_vertex_log(
        &vlog,
        options.noise_threshold,
        deadline,
        threads,
        sink,
        tracer,
        reg,
    )?;

    // Step 8: merge instance vertices back into activities.
    run_stage(Stage::Assemble, deadline, sink, tracer, reg, |sink, _| {
        let mut graph = graph_skeleton(log.activities());
        let mut support_acc = vec![0u32; n * n];
        for (x, y) in result.graph.edges() {
            let (a, b) = (activity_of[x], activity_of[y]);
            if a != b {
                graph.add_edge(NodeId::new(a), NodeId::new(b));
                support_acc[a * n + b] =
                    support_acc[a * n + b].saturating_add(result.counts[x * total + y]);
            }
        }
        let support: Vec<(usize, usize, u32)> = graph
            .edges()
            .map(|(u, v)| (u.index(), v.index(), support_acc[u.index() * n + v.index()]))
            .collect();
        if S::ENABLED {
            // The pipeline recorded the instance-level edge count; the
            // merge step can collapse several instance edges into one
            // activity edge, so re-point `edges_final` at the model.
            let merged = support.len() as u64;
            sink.record(|m| m.edges_final = merged);
        }
        Ok(MinedModel::new(graph, support))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mine(strings: &[&str]) -> MinedModel {
        let log = WorkflowLog::from_strings(strings.iter().copied()).unwrap();
        mine_cyclic(&log, &MinerOptions::default()).unwrap()
    }

    #[test]
    fn paper_example_8() {
        // Log {ABDCE, ABDCBCE, ABCBDCE, ADE} → Figure 6 (right): the
        // mined graph contains the B⇄C cycle.
        let model = mine(&["ABDCE", "ABDCBCE", "ABCBDCE", "ADE"]);
        let mut edges = model.edges_named();
        edges.sort();
        assert_eq!(
            edges,
            vec![
                ("A", "B"),
                ("A", "D"),
                ("B", "C"),
                ("B", "D"),
                ("C", "B"),
                ("C", "E"),
                ("D", "C"),
                ("D", "E"),
            ]
        );
        assert!(
            model.has_edge("B", "C") && model.has_edge("C", "B"),
            "B⇄C cycle"
        );
    }

    #[test]
    fn acyclic_log_matches_general_miner() {
        let strings = ["ABCF", "ACDF", "ADEF", "AECF"];
        let log = WorkflowLog::from_strings(strings).unwrap();
        let cyclic = mine_cyclic(&log, &MinerOptions::default()).unwrap();
        let general = crate::mine_general_dag(&log, &MinerOptions::default()).unwrap();
        let mut a = cyclic.edges_named();
        let mut b = general.edges_named();
        a.sort();
        b.sort();
        assert_eq!(
            a, b,
            "on repeat-free logs Algorithm 3 degenerates to Algorithm 2"
        );
    }

    #[test]
    fn simple_loop_recovered() {
        // Process A → B → C with a rework loop C → B.
        let model = mine(&["ABCD", "ABCBCD", "ABCBCBCD"]);
        assert!(model.has_edge("A", "B"));
        assert!(model.has_edge("B", "C"));
        assert!(model.has_edge("C", "B"), "rework loop");
        assert!(model.has_edge("C", "D"));
        assert!(!model.has_edge("B", "D"), "D only reachable through C");
    }

    #[test]
    fn immediate_self_repeat_yields_no_self_loop() {
        let model = mine(&["AABC", "ABC"]);
        assert!(!model.has_edge("A", "A"));
        assert!(model.has_edge("B", "C"));
    }

    #[test]
    fn empty_log_rejected() {
        assert_eq!(
            mine_cyclic(&WorkflowLog::new(), &MinerOptions::default()).unwrap_err(),
            MineError::EmptyLog
        );
    }

    #[test]
    fn threaded_session_matches_serial() {
        let strings = ["ABDCE", "ABDCBCE", "ABCBDCE", "ADE"];
        let log = WorkflowLog::from_strings(strings).unwrap();
        let serial = mine_cyclic(&log, &MinerOptions::default()).unwrap();
        let mut session = MineSession::new().with_threads(3);
        let threaded = mine_cyclic_in(&mut session, &log, &MinerOptions::default()).unwrap();
        let mut a = serial.edges_named();
        let mut b = threaded.edges_named();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn instance_counts_sized_per_activity() {
        // A appears 3×, B 1× — instance space must be ragged, and the
        // miner must not panic or cross-wire instances.
        let model = mine(&["ABACA", "ACA"]);
        assert_eq!(model.activity_count(), 3);
        assert!(model.node_of("A").is_some());
    }
}
