//! The mined process model: a directed graph over named activities.

use procmine_graph::dot::{self, DotOptions};
use procmine_graph::{DiGraph, NodeId};
use procmine_log::{ActivityId, ActivityTable};
use serde::{Deserialize, Serialize};

/// The result of mining: a directed graph whose node `i` is the activity
/// with [`ActivityId`] index `i` in the log's activity table. Node
/// payloads are the activity names, so the model is self-describing and
/// can be rendered or serialized without the originating log.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MinedModel {
    graph: DiGraph<String>,
    /// Per-edge observation counts from step 2 of the algorithm (how
    /// many executions ordered the pair that way), for surviving edges.
    /// Used by the noise analysis and for reporting edge confidence.
    edge_support: Vec<(usize, usize, u32)>,
}

impl MinedModel {
    pub(crate) fn new(graph: DiGraph<String>, edge_support: Vec<(usize, usize, u32)>) -> Self {
        MinedModel {
            graph,
            edge_support,
        }
    }

    /// Builds a model directly from a graph whose node ids align with
    /// `table` (used by the simulator to wrap ground-truth graphs and by
    /// tests).
    pub fn from_graph(graph: DiGraph<String>) -> Self {
        MinedModel {
            graph,
            edge_support: Vec::new(),
        }
    }

    /// The mined graph. Node `i` is activity `i` of the originating
    /// log's activity table; payloads are activity names.
    pub fn graph(&self) -> &DiGraph<String> {
        &self.graph
    }

    /// Number of activities.
    pub fn activity_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }

    /// The node id of the activity named `name`, if present.
    pub fn node_of(&self, name: &str) -> Option<NodeId> {
        self.graph
            .nodes()
            .find(|(_, n)| n.as_str() == name)
            .map(|(id, _)| id)
    }

    /// The name of node `id`.
    pub fn name_of(&self, id: NodeId) -> &str {
        self.graph.node(id)
    }

    /// Edge test by activity name. `false` if either name is unknown.
    pub fn has_edge(&self, from: &str, to: &str) -> bool {
        match (self.node_of(from), self.node_of(to)) {
            (Some(u), Some(v)) => self.graph.has_edge(u, v),
            _ => false,
        }
    }

    /// All edges as name pairs, in lexicographic node-id order.
    pub fn edges_named(&self) -> Vec<(&str, &str)> {
        self.graph
            .edges()
            .map(|(u, v)| (self.graph.node(u).as_str(), self.graph.node(v).as_str()))
            .collect()
    }

    /// How many executions supported each surviving edge (the step-2
    /// counters of the §6 noise treatment). Empty for models not built
    /// by the miners.
    pub fn edge_support(&self) -> &[(usize, usize, u32)] {
        &self.edge_support
    }

    /// Renders the model as Graphviz DOT (left-to-right, ellipse nodes,
    /// like the paper's figures).
    pub fn to_dot(&self, name: &str) -> String {
        let opts = DotOptions {
            name: name.to_string(),
            ..DotOptions::default()
        };
        dot::to_dot(&self.graph, &opts)
    }

    /// Renders the model as DOT with each edge labelled by its
    /// observation support (how many executions ordered the pair that
    /// way) and its pen width scaled by relative support — a quick
    /// visual of the dominant routes.
    pub fn to_dot_with_support(&self, name: &str) -> String {
        use std::fmt::Write as _;
        let max = self
            .edge_support
            .iter()
            .map(|&(_, _, c)| c)
            .max()
            .unwrap_or(1)
            .max(1);
        let support: std::collections::HashMap<(usize, usize), u32> = self
            .edge_support
            .iter()
            .map(|&(u, v, c)| ((u, v), c))
            .collect();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "digraph {} {{",
            name.replace(|c: char| !c.is_ascii_alphanumeric() && c != '_', "_")
        );
        let _ = writeln!(out, "  rankdir=LR;");
        let _ = writeln!(out, "  node [shape=ellipse];");
        for (id, label) in self.graph.nodes() {
            let _ = writeln!(
                out,
                "  n{} [label=\"{}\"];",
                id.index(),
                label.replace('"', "\\\"")
            );
        }
        for (u, v) in self.graph.edges() {
            let c = support.get(&(u.index(), v.index())).copied().unwrap_or(0);
            let width = 1.0 + 3.0 * (c as f64 / max as f64);
            let _ = writeln!(
                out,
                "  n{} -> n{} [label=\"{}\", penwidth={:.2}];",
                u.index(),
                v.index(),
                c,
                width
            );
        }
        out.push_str("}\n");
        out
    }

    /// Converts an [`ActivityId`] from the originating log into this
    /// model's [`NodeId`] (they share the same dense index space).
    pub fn node_of_activity(&self, a: ActivityId) -> NodeId {
        NodeId::new(a.index())
    }
}

/// Builds the node-per-activity graph skeleton for a mining run: node
/// `i` carries the name of activity `i`.
pub(crate) fn graph_skeleton(table: &ActivityTable) -> DiGraph<String> {
    let mut g = DiGraph::with_capacity(table.len());
    for (_, name) in table.iter() {
        g.add_node(name.to_string());
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MinedModel {
        let g = DiGraph::from_edges(
            vec!["A".to_string(), "B".to_string(), "C".to_string()],
            [(0, 1), (1, 2)],
        );
        MinedModel::from_graph(g)
    }

    #[test]
    fn name_lookups() {
        let m = sample();
        assert!(m.has_edge("A", "B"));
        assert!(!m.has_edge("B", "A"));
        assert!(!m.has_edge("A", "Z"));
        assert_eq!(m.node_of("C"), Some(NodeId::new(2)));
        assert_eq!(m.node_of("Z"), None);
        assert_eq!(m.name_of(NodeId::new(0)), "A");
        assert_eq!(m.edges_named(), vec![("A", "B"), ("B", "C")]);
    }

    #[test]
    fn dot_contains_names() {
        let m = sample();
        let dot = m.to_dot("test");
        assert!(dot.contains("label=\"A\""));
        assert!(dot.contains("n0 -> n1;"));
    }

    #[test]
    fn dot_with_support_labels_edges() {
        let g = DiGraph::from_edges(
            vec!["A".to_string(), "B".to_string(), "C".to_string()],
            [(0, 1), (1, 2)],
        );
        let m = MinedModel::new(g, vec![(0, 1, 40), (1, 2, 10)]);
        let dot = m.to_dot_with_support("supported model");
        assert!(dot.starts_with("digraph supported_model {"));
        assert!(dot.contains("label=\"40\", penwidth=4.00"));
        assert!(dot.contains("label=\"10\", penwidth=1.75"));
    }

    #[test]
    fn dot_with_support_handles_missing_support() {
        // from_graph has no support data — every edge labels 0 with
        // base width.
        let m = sample();
        let dot = m.to_dot_with_support("x");
        assert!(dot.contains("label=\"0\", penwidth=1.00"));
    }

    #[test]
    fn skeleton_matches_table() {
        let t = ActivityTable::from_names(["X", "Y"]);
        let g = graph_skeleton(&t);
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.node(NodeId::new(1)), "Y");
        assert_eq!(g.edge_count(), 0);
    }
}
