//! Baseline comparison — process graphs vs. FSM discovery (k-tails).
//!
//! §1 of the paper argues for process graphs over the FSM models of
//! Cook & Wolf: "In an automaton, the activities (input tokens) are
//! represented by the edges … An activity appears only once in a
//! process graph as a vertex label, whereas the same token (activity)
//! may appear multiple times in an automaton." This experiment
//! quantifies that claim on the paper's workloads: model size
//! (states/transitions vs. vertices/edges) and token duplication for
//! the k-tails baseline against Algorithm 2's graphs.
//! Run with `--release`.

use procmine_bench::TextTable;
use procmine_core::baseline::ktail;
use procmine_core::{mine_general_dag, MinerOptions};
use procmine_log::WorkflowLog;
use procmine_sim::{annotate, engine, presets, walk};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    println!("Baseline: k-tails FSM discovery vs. Algorithm 2 process graphs (k = 2)\n");
    let mut table = TextTable::new([
        "workload",
        "m",
        "graph nodes",
        "graph edges",
        "fsm states",
        "fsm transitions",
        "dup tokens",
    ]);

    // §1's didactic parallel process.
    let parallel = WorkflowLog::from_strings(["SABE", "SBAE"]).unwrap();
    report(&mut table, "S{A∥B}E (§1)", &parallel);

    // Graph10 via the condition engine.
    let graph10 = annotate::with_xor_conditions(&presets::graph10());
    let mut rng = StdRng::seed_from_u64(12);
    let log = engine::generate_log(&graph10, 100, &mut rng).expect("log");
    report(&mut table, "Graph10", &log);

    // StressSleep with its four parallel lanes — interleavings explode
    // the automaton while the graph stays at 14 nodes.
    let stress = presets::stress_sleep();
    let log = walk::random_walk_log(&stress, 160, &mut rng).expect("log");
    report(&mut table, "StressSleep", &log);

    println!("{}", table.render());
    println!("shape: the process graph stays at one vertex per activity; the automaton");
    println!("duplicates tokens across states, growing with the number of observed");
    println!("interleavings of parallel branches (the paper's §1 argument).");
}

fn report(table: &mut TextTable, name: &str, log: &WorkflowLog) {
    let model = mine_general_dag(log, &MinerOptions::default()).expect("mine");
    let fsm = ktail(log, 2);
    table.row([
        name.to_string(),
        log.len().to_string(),
        model.activity_count().to_string(),
        model.edge_count().to_string(),
        fsm.state_count().to_string(),
        fsm.transition_count().to_string(),
        fsm.token_duplication().len().to_string(),
    ]);
}
