//! Running the full pipeline on a user-defined process file.
//!
//! Loads the insurance-claims model from `examples/data/claims.proc`
//! (the plain-text model-definition format), simulates it, mines the
//! graph back, verifies, analyses the decision points, and rebuilds an
//! executable model from the mined artifacts — the complete downstream
//! workflow a user of this library would run on their own process.
//!
//! ```sh
//! cargo run --example custom_model
//! ```

use procmine::bridge::executable_model;
use procmine::classify::{analyze_decision_points, TreeConfig};
use procmine::mine::conformance::check_conformance;
use procmine::mine::metrics::compare_models;
use procmine::mine::{mine_auto, MinedModel, MinerOptions};
use procmine::sim::{engine, textfmt};
use rand::rngs::StdRng;
use rand::SeedableRng;

const DEFINITION: &str = include_str!("data/claims.proc");

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Load the user's process definition.
    let process = textfmt::read_model(DEFINITION.as_bytes())?;
    println!(
        "loaded `{}`: {} activities, {} edges",
        process.name(),
        process.activity_count(),
        process.edge_count()
    );

    // 2. Simulate six months of claims.
    let mut rng = StdRng::seed_from_u64(77);
    let log = engine::generate_log(&process, 600, &mut rng)?;
    println!("simulated {} cases", log.len());

    // 3. Mine and verify.
    let (mined, algorithm) = mine_auto(&log, &MinerOptions::default())?;
    let reference = MinedModel::from_graph(process.graph_clone());
    let recovery = compare_models(&reference, &mined)?;
    let report = check_conformance(&mined, &log);
    println!(
        "\nmined with {algorithm:?}: {} edges; exact recovery: {}; conformal: {}",
        mined.edge_count(),
        recovery.exact,
        report.is_conformal()
    );
    for (u, v) in mined.edges_named() {
        println!("  {u} -> {v}");
    }

    // 4. Decision mining: which splits are data-driven choices?
    println!("\ndecision points:");
    for dp in analyze_decision_points(&mined, &log, &TreeConfig::default()) {
        println!(
            "  {} [{}] coverage {:.2} exclusivity {:.2}{}",
            dp.gateway.activity,
            dp.gateway.kind,
            dp.coverage,
            dp.exclusivity,
            if dp.is_clean_xor() {
                "  <- clean XOR decision"
            } else {
                ""
            }
        );
        for (branch, cond) in dp.gateway.branches.iter().zip(&dp.conditions) {
            let rules: Vec<String> = cond.rules.iter().map(ToString::to_string).collect();
            if !rules.is_empty() {
                println!("      -> {branch} when {}", rules.join(" OR "));
            }
        }
    }

    // 5. Close the loop: rebuild an executable model from the mined
    //    graph + learned conditions and take it for a spin.
    let rebuilt = executable_model(&mined, &log, &TreeConfig::default())?;
    let sample = engine::simulate(&rebuilt, "replay-0", &mut rng)?;
    println!(
        "\nrebuilt executable model runs: {}",
        sample.display(rebuilt.activities())
    );
    Ok(())
}
