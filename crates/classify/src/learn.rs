//! End-to-end conditions mining: one learned condition per model edge.

use crate::{edge_training_set, rules_of, Dataset, DecisionTree, Rule, TreeConfig};
use procmine_core::MinedModel;
use procmine_log::ActivityId;
use procmine_log::WorkflowLog;

/// The learned condition for one edge of a mined model.
#[derive(Debug, Clone)]
pub struct LearnedCondition {
    /// Source activity name.
    pub from: String,
    /// Target activity name.
    pub to: String,
    /// The fitted tree (`None` when the log never records an output for
    /// the source activity — nothing to learn from, as with the paper's
    /// Flowmark logs, which "do not log the input and output parameters").
    pub tree: Option<DecisionTree>,
    /// Positive rules extracted from the tree.
    pub rules: Vec<Rule>,
    /// Training accuracy of the tree (1.0 when no tree was fit).
    pub train_accuracy: f64,
    /// `(negative, positive)` training examples.
    pub support: (usize, usize),
}

impl LearnedCondition {
    /// Predicts whether the edge fires for a given source output.
    /// Without a tree, falls back to the majority class of the training
    /// support (or `true` when even that is unknown — an edge with no
    /// evidence at all behaves unconditionally).
    pub fn predict(&self, output: &[i64]) -> bool {
        match &self.tree {
            Some(t) => t.predict(output),
            None => self.support.1 >= self.support.0,
        }
    }
}

/// Learns a condition for every edge of `model` from `log` (§7).
///
/// The model's node indices must align with the log's activity table —
/// true for models mined from that log.
pub fn learn_edge_conditions(
    model: &MinedModel,
    log: &WorkflowLog,
    cfg: &TreeConfig,
) -> Vec<LearnedCondition> {
    let mut out = Vec::with_capacity(model.edge_count());
    for (u, v) in model.graph().edges() {
        let ua = ActivityId::from_index(u.index());
        let va = ActivityId::from_index(v.index());
        let from = model.name_of(u).to_string();
        let to = model.name_of(v).to_string();
        let ds: Option<Dataset> = edge_training_set(log, ua, va);
        match ds {
            Some(ds) => {
                let tree = DecisionTree::fit(&ds, cfg);
                let rules = rules_of(&tree);
                let support = (ds.len() - ds.positives(), ds.positives());
                out.push(LearnedCondition {
                    from,
                    to,
                    train_accuracy: tree.accuracy(&ds),
                    rules,
                    tree: Some(tree),
                    support,
                });
            }
            None => {
                // No outputs: count co-occurrence support only.
                let (mut neg, mut pos) = (0usize, 0usize);
                for exec in log.executions() {
                    if exec.contains(ua) {
                        if exec.contains(va) {
                            pos += 1;
                        } else {
                            neg += 1;
                        }
                    }
                }
                out.push(LearnedCondition {
                    from,
                    to,
                    tree: None,
                    rules: Vec::new(),
                    train_accuracy: 1.0,
                    support: (neg, pos),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use procmine_core::{mine_general_dag, MinerOptions};
    use procmine_sim::{engine, presets};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn recovers_order_fulfillment_conditions() {
        let model = presets::order_fulfillment();
        let mut rng = StdRng::seed_from_u64(2025);
        let log = engine::generate_log(&model, 400, &mut rng).unwrap();
        let mined = mine_general_dag(&log, &MinerOptions::default()).unwrap();
        let learned = learn_edge_conditions(&mined, &log, &TreeConfig::default());

        let find = |f: &str, t: &str| {
            learned
                .iter()
                .find(|c| c.from == f && c.to == t)
                .unwrap_or_else(|| panic!("no learned condition for {f}->{t}"))
        };

        // Assess → ManagerApproval fires iff amount (o[0]) > 500.
        let approval = find("Assess", "ManagerApproval");
        assert!(
            approval.train_accuracy > 0.98,
            "acc={}",
            approval.train_accuracy
        );
        assert!(approval.predict(&[800, 10]));
        assert!(!approval.predict(&[100, 10]));

        // Assess → FraudCheck fires iff risk (o[1]) > 70.
        let fraud = find("Assess", "FraudCheck");
        assert!(fraud.train_accuracy > 0.98);
        assert!(fraud.predict(&[100, 90]));
        assert!(!fraud.predict(&[100, 10]));
    }

    #[test]
    fn edges_without_outputs_get_support_only() {
        let log = procmine_log::WorkflowLog::from_strings(["ABC", "ABC", "AC"]).unwrap();
        let mined = mine_general_dag(&log, &MinerOptions::default()).unwrap();
        let learned = learn_edge_conditions(&mined, &log, &TreeConfig::default());
        for c in &learned {
            assert!(c.tree.is_none(), "no outputs anywhere in this log");
        }
        let ab = learned
            .iter()
            .find(|c| c.from == "A" && c.to == "B")
            .unwrap();
        assert_eq!(ab.support, (1, 2));
        assert!(ab.predict(&[]), "majority of A-executions take B");
    }
}
