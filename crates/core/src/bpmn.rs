//! BPMN 2.0 XML export of mined models.
//!
//! The paper's motivation is feeding discovered models back into a
//! workflow system; today's lingua franca for that is BPMN. This module
//! serializes a [`MinedModel`] plus its
//! [`GatewayAnalysis`] as a minimal
//! BPMN 2.0 `<process>`: one `<task>` per activity, a `<startEvent>` /
//! `<endEvent>` wired to the initiating/terminating activities, and an
//! explicit gateway element (`parallelGateway` for AND,
//! `exclusiveGateway` for XOR, `inclusiveGateway` for OR) materialized
//! after every split and before every join. The output imports into
//! BPMN-aware editors (bpmn.io, Camunda Modeler, Signavio).

use crate::splits::{GatewayAnalysis, GatewayKind};
use crate::MinedModel;
use std::fmt::Write as _;

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

fn gateway_element(kind: GatewayKind) -> &'static str {
    match kind {
        GatewayKind::And => "parallelGateway",
        GatewayKind::Xor => "exclusiveGateway",
        GatewayKind::Or => "inclusiveGateway",
    }
}

/// Serializes the model as BPMN 2.0 XML.
///
/// Splits and joins listed in `gateways` become explicit gateway nodes;
/// edges not adjacent to a gateway become direct `<sequenceFlow>`s.
/// Pass `GatewayAnalysis::default()` to export without gateways (every
/// branch wired directly).
pub fn to_bpmn_xml(model: &MinedModel, gateways: &GatewayAnalysis, process_id: &str) -> String {
    let g = model.graph();
    let mut nodes = String::new();
    let mut flows = String::new();
    let mut flow_id = 0usize;
    let mut flow = |flows: &mut String, from: String, to: String| {
        flow_id += 1;
        let _ = writeln!(
            flows,
            r#"    <sequenceFlow id="flow_{flow_id}" sourceRef="{from}" targetRef="{to}"/>"#
        );
    };

    // Tasks.
    for (id, name) in g.nodes() {
        let _ = writeln!(
            nodes,
            r#"    <task id="task_{}" name="{}"/>"#,
            id.index(),
            xml_escape(name)
        );
    }

    // Gateways: one node per classified split/join.
    let split_of = |name: &str| gateways.splits.iter().find(|s| s.activity == name);
    let join_of = |name: &str| gateways.joins.iter().find(|j| j.activity == name);
    for s in &gateways.splits {
        if let Some(v) = model.node_of(&s.activity) {
            let _ = writeln!(
                nodes,
                r#"    <{} id="split_{}"/>"#,
                gateway_element(s.kind),
                v.index()
            );
        }
    }
    for j in &gateways.joins {
        if let Some(v) = model.node_of(&j.activity) {
            let _ = writeln!(
                nodes,
                r#"    <{} id="join_{}"/>"#,
                gateway_element(j.kind),
                v.index()
            );
        }
    }

    // Start / end events around the model's source(s) and sink(s).
    let _ = writeln!(nodes, r#"    <startEvent id="start"/>"#);
    let _ = writeln!(nodes, r#"    <endEvent id="end"/>"#);
    for v in g.sources() {
        flow(&mut flows, "start".into(), format!("task_{}", v.index()));
    }
    for v in g.sinks() {
        flow(&mut flows, format!("task_{}", v.index()), "end".into());
    }

    // Split-side flows: task → its gateway (once); branch flows follow.
    for (id, name) in g.nodes() {
        if split_of(name).is_some() {
            flow(
                &mut flows,
                format!("task_{}", id.index()),
                format!("split_{}", id.index()),
            );
        }
    }
    // Edge flows, routed through gateways where present.
    for (u, v) in g.edges() {
        let from = match split_of(g.node(u)) {
            Some(_) => format!("split_{}", u.index()),
            None => format!("task_{}", u.index()),
        };
        let to = match join_of(g.node(v)) {
            Some(_) => format!("join_{}", v.index()),
            None => format!("task_{}", v.index()),
        };
        flow(&mut flows, from, to);
    }
    // Join-side flows: gateway → task (once).
    for (id, name) in g.nodes() {
        if join_of(name).is_some() {
            flow(
                &mut flows,
                format!("join_{}", id.index()),
                format!("task_{}", id.index()),
            );
        }
    }

    format!(
        r#"<?xml version="1.0" encoding="UTF-8"?>
<definitions xmlns="http://www.omg.org/spec/BPMN/20100524/MODEL"
             id="procmine_definitions"
             targetNamespace="https://procmine.example/bpmn">
  <process id="{}" isExecutable="false">
{}{}  </process>
</definitions>
"#,
        xml_escape(process_id),
        nodes,
        flows
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::splits::analyze_gateways;
    use crate::{mine_general_dag, MinerOptions};
    use procmine_log::WorkflowLog;

    fn exported(strings: &[&str]) -> String {
        let log = WorkflowLog::from_strings(strings.iter().copied()).unwrap();
        let model = mine_general_dag(&log, &MinerOptions::default()).unwrap();
        let gateways = analyze_gateways(&model, &log);
        to_bpmn_xml(&model, &gateways, "test_process")
    }

    #[test]
    fn chain_exports_tasks_and_events() {
        let xml = exported(&["ABC", "ABC"]);
        assert!(xml.starts_with(r#"<?xml version="1.0""#));
        assert!(xml.contains(r#"<task id="task_0" name="A"/>"#));
        assert!(xml.contains(r#"<startEvent id="start"/>"#));
        assert!(xml.contains(r#"sourceRef="start" targetRef="task_0""#));
        assert!(xml.contains(r#"targetRef="end""#));
        assert!(!xml.contains("Gateway"), "no branches, no gateways");
    }

    #[test]
    fn and_split_becomes_parallel_gateway() {
        let xml = exported(&["ABCD", "ACBD"]);
        assert!(xml.contains("<parallelGateway id=\"split_0\"/>"), "{xml}");
        assert!(xml.contains("<parallelGateway id=\"join_3\"/>"));
        // A routes through its gateway, not directly to B.
        assert!(xml.contains(r#"sourceRef="task_0" targetRef="split_0""#));
        assert!(xml.contains(r#"sourceRef="split_0" targetRef="task_1""#));
        assert!(xml.contains(r#"sourceRef="join_3" targetRef="task_3""#));
        assert!(!xml.contains(r#"sourceRef="task_0" targetRef="task_1""#));
    }

    #[test]
    fn xor_split_becomes_exclusive_gateway() {
        let xml = exported(&["ABD", "ACD"]);
        assert!(xml.contains("<exclusiveGateway id=\"split_0\"/>"));
        assert!(xml.contains("<exclusiveGateway id=\"join_"));
    }

    #[test]
    fn names_are_escaped() {
        let log = WorkflowLog::from_sequences([["a<b", "c&d"]]).unwrap();
        let model = mine_general_dag(&log, &MinerOptions::default()).unwrap();
        let xml = to_bpmn_xml(&model, &Default::default(), "p \"q\"");
        assert!(xml.contains("name=\"a&lt;b\""));
        assert!(xml.contains("name=\"c&amp;d\""));
        assert!(xml.contains("id=\"p &quot;q&quot;\""));
    }

    #[test]
    fn flow_count_matches_structure() {
        // Chain A→B→C: flows = start→A, C→end, A→B, B→C = 4.
        let xml = exported(&["ABC"]);
        assert_eq!(xml.matches("<sequenceFlow").count(), 4);
        // Diamond with AND split at A and join at D:
        // start→A, D→end, A→split, split→B, split→C, B→join, C→join,
        // join→D = 8.
        let xml = exported(&["ABCD", "ACBD"]);
        assert_eq!(xml.matches("<sequenceFlow").count(), 8, "{xml}");
    }
}
