//! Conformance checking: Definitions 6 and 7 of the paper, implemented
//! independently of the miners so mined models can be *verified*, not
//! just trusted.
//!
//! * [`check_execution`] — Definition 6: is one execution consistent
//!   with a model graph? (Induced subgraph connected, endpoints are the
//!   initiating/terminating activities, everything reachable from the
//!   start, no graph dependency contradicted by the observed ordering.)
//! * [`check_conformance`] — Definition 7: is the model conformal with a
//!   whole log? (Dependency completeness + irredundancy against the
//!   [`follows`](crate::follows) relations, plus execution completeness
//!   via Definition 6.)
//!
//! For models with cycles, activities in the same strongly connected
//! component follow each other both ways and are therefore *independent*
//! (Definition 4); dependency checks skip such pairs, which generalizes
//! the paper's DAG-centric definitions the way §5 intends.
//!
//! Conformance checking exists to diagnose *foreign* logs — a log whose
//! activity table differs from the model's is the interesting case, not
//! a programming error. [`check_conformance`] therefore aligns the two
//! tables by activity name and reports unmatched names in
//! [`ConformanceReport::unknown_activities`]; [`check_execution`]
//! reports out-of-range activity ids as
//! [`Violation::UnknownActivity`]. Neither panics. Both have `*_in`
//! forms that run inside a [`MineSession`](crate::MineSession) and feed
//! its [`ConformanceMetrics`](crate::telemetry::ConformanceMetrics)
//! sink.

use crate::follows::FollowsAnalysis;
use crate::session::MineSession;
use crate::telemetry::{ConformanceMetrics, MetricsSink};
use crate::MinedModel;
use procmine_graph::{reach, scc, NodeId};
use procmine_log::{ActivityId, ActivityInstance, Execution, WorkflowLog};
use std::collections::HashMap;
use std::time::Instant;

/// One way an execution can fail Definition 6 against a model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// The execution contains an activity the model has no node for.
    UnknownActivity {
        /// The activity's name where known ([`check_conformance`]
        /// resolves it from the log's table), otherwise its raw id
        /// rendered as `#id` (a bare [`check_execution`] has no table
        /// to consult).
        activity: String,
    },
    /// The induced subgraph over the execution's activities is not
    /// (weakly) connected.
    NotConnected,
    /// The execution does not start at the model's initiating activity.
    WrongInitiating {
        /// The activity the execution actually started with.
        found: String,
    },
    /// The execution does not end at the model's terminating activity.
    WrongTerminating {
        /// The activity the execution actually ended with.
        found: String,
    },
    /// An activity in the execution cannot be reached from the
    /// initiating activity within the induced subgraph.
    Unreachable {
        /// The unreachable activity.
        activity: String,
    },
    /// The execution orders two activities against a model dependency.
    DependencyViolated {
        /// Dependency source (must come first per the model).
        from: String,
        /// Dependency target (observed not-after `from`).
        to: String,
    },
}

/// Checks one execution against a model graph (Definition 6). Returns
/// all violations found (empty = consistent).
///
/// The model's node ids are assumed to align with the log's activity
/// table (true for models mined from that log and for simulator ground
/// truth). Activity ids the model has no node for are reported as
/// [`Violation::UnknownActivity`] — never a panic — and the remaining
/// checks run over the known activities only.
pub fn check_execution(model: &MinedModel, exec: &Execution) -> Vec<Violation> {
    check_execution_impl(model, exec)
}

/// [`check_execution`] inside a [`MineSession`]: counts the execution,
/// its violations by variant, and the check's wall time into the
/// session's sink (see [`ConformanceMetrics`]). With a default session
/// this is the plain twin; the single-execution check records no spans.
pub fn check_execution_in<S: MetricsSink<ConformanceMetrics>>(
    session: &mut MineSession<S>,
    model: &MinedModel,
    exec: &Execution,
) -> Vec<Violation> {
    let (sink, _) = session.handles();
    let started = S::ENABLED.then(Instant::now);
    let violations = check_execution_impl(model, exec);
    record_execution_check(sink, &violations, elapsed_nanos(started));
    violations
}

fn elapsed_nanos(started: Option<Instant>) -> u64 {
    started.map_or(0, |s| s.elapsed().as_nanos() as u64)
}

/// Tallies one checked execution's violations into the sink.
fn record_execution_check<S: MetricsSink<ConformanceMetrics>>(
    sink: &mut S,
    violations: &[Violation],
    nanos: u64,
) {
    if !S::ENABLED {
        return;
    }
    sink.record(|m| {
        m.executions_checked += 1;
        m.check_nanos += nanos;
        if violations.is_empty() {
            m.consistent_executions += 1;
        }
        for v in violations {
            match v {
                Violation::UnknownActivity { .. } => m.violations_unknown_activity += 1,
                Violation::NotConnected => m.violations_not_connected += 1,
                Violation::WrongInitiating { .. } => m.violations_wrong_initiating += 1,
                Violation::WrongTerminating { .. } => m.violations_wrong_terminating += 1,
                Violation::Unreachable { .. } => m.violations_unreachable += 1,
                Violation::DependencyViolated { .. } => m.violations_dependency += 1,
            }
        }
    });
}

fn check_execution_impl(model: &MinedModel, exec: &Execution) -> Vec<Violation> {
    let g = model.graph();
    let n = g.node_count();
    let mut violations = Vec::new();

    // Present known activities, in start order (dedup, keep first
    // occurrence). Ids the model has no node for become
    // UnknownActivity violations (one per distinct id).
    let mut present: Vec<usize> = Vec::new();
    let mut seen = vec![false; n];
    let mut unknown: Vec<usize> = Vec::new();
    for a in exec.sequence() {
        let idx = a.index();
        if idx >= n {
            if !unknown.contains(&idx) {
                unknown.push(idx);
                violations.push(Violation::UnknownActivity {
                    activity: format!("#{idx}"),
                });
            }
        } else if !seen[idx] {
            seen[idx] = true;
            present.push(idx);
        }
    }
    if present.is_empty() {
        // Nothing the model knows about; the structural checks are
        // vacuous.
        return violations;
    }

    // Induced subgraph over the present activities: Definition 6 takes
    // *all* model edges between present activities.
    let present_ids: Vec<NodeId> = present.iter().map(|&a| NodeId::new(a)).collect();
    let induced = procmine_graph::induced::induced_subgraph(g, &present_ids).graph;

    if !reach::is_weakly_connected(&induced) {
        violations.push(Violation::NotConnected);
    }

    // Endpoints: the model's initiating/terminating activities are its
    // sources/sinks. (A well-formed process model has exactly one of
    // each; we accept membership so partially-mined graphs still check.)
    // With unknown activities in the mix, the first/last *known*
    // activity stands in for the endpoints.
    let mut known = exec
        .instances()
        .iter()
        .map(|i| i.activity)
        .filter(|a| a.index() < n);
    let Some(first) = known.next() else {
        // Unreachable: `present` being non-empty means some instance
        // maps into the model; bail without endpoint checks regardless.
        return violations;
    };
    let last = known.next_back().unwrap_or(first);
    let sources = g.sources();
    let sinks = g.sinks();
    if !sources.is_empty() && !sources.contains(&NodeId::new(first.index())) {
        violations.push(Violation::WrongInitiating {
            found: model.name_of(NodeId::new(first.index())).to_string(),
        });
    }
    if !sinks.is_empty() && !sinks.contains(&NodeId::new(last.index())) {
        violations.push(Violation::WrongTerminating {
            found: model.name_of(NodeId::new(last.index())).to_string(),
        });
    }

    // Reachability from the initiating activity within the induced
    // subgraph.
    let Some(first_pos) = present.iter().position(|&a| a == first.index()) else {
        // Unreachable: `first` was selected from the known activities
        // that populated `present`.
        return violations;
    };
    let start_pos = NodeId::new(first_pos);
    let mut reachable = reach::reachable_from(&induced, start_pos);
    reachable.insert(start_pos.index());
    for (i, &a) in present.iter().enumerate() {
        if !reachable.contains(i) {
            violations.push(Violation::Unreachable {
                activity: model.name_of(NodeId::new(a)).to_string(),
            });
        }
    }

    // Dependency ordering: for each pair with a path u→v in the induced
    // subgraph but not v→u (a real dependency — mutual paths mean a
    // cycle, i.e. independence), u must terminate before v starts.
    let closure = reach::transitive_closure(&induced);
    // Whole-activity intervals within this execution.
    let mut min_start = vec![u64::MAX; n];
    let mut max_end = vec![0u64; n];
    for inst in exec.instances() {
        let a = inst.activity.index();
        if a >= n {
            continue;
        }
        min_start[a] = min_start[a].min(inst.start);
        max_end[a] = max_end[a].max(inst.end);
    }
    for (i, &u) in present.iter().enumerate() {
        for (j, &v) in present.iter().enumerate() {
            if i != j && closure.has_edge(i, j) && !closure.has_edge(j, i) {
                // u must wholly precede v.
                if max_end[u] >= min_start[v] {
                    violations.push(Violation::DependencyViolated {
                        from: model.name_of(NodeId::new(u)).to_string(),
                        to: model.name_of(NodeId::new(v)).to_string(),
                    });
                }
            }
        }
    }

    violations
}

/// The result of checking a model against a log (Definition 7).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConformanceReport {
    /// Dependencies in the log (`v` depends on `u`) with no `u→v` path
    /// in the model — failures of *dependency completeness*.
    pub missing_dependencies: Vec<(String, String)>,
    /// Independent activity pairs connected by a model path — failures
    /// of *irredundancy*.
    pub spurious_dependencies: Vec<(String, String)>,
    /// Executions that are not consistent with the model
    /// (Definition 6) — failures of *execution completeness*.
    pub inconsistent_executions: Vec<(String, Vec<Violation>)>,
    /// Activity names present in the log but absent from the model —
    /// a foreign log. The model cannot be conformal with a log it does
    /// not even cover.
    pub unknown_activities: Vec<String>,
}

impl ConformanceReport {
    /// `true` if the model is conformal with the log.
    pub fn is_conformal(&self) -> bool {
        self.missing_dependencies.is_empty()
            && self.spurious_dependencies.is_empty()
            && self.inconsistent_executions.is_empty()
            && self.unknown_activities.is_empty()
    }

    /// Renders the report as machine-readable JSON (the CLI's
    /// `check --json` output). Stable schema:
    ///
    /// ```json
    /// {
    ///   "conformal": false,
    ///   "missing_dependencies": [{"from": "A", "to": "B"}],
    ///   "spurious_dependencies": [],
    ///   "unknown_activities": ["X"],
    ///   "inconsistent_executions": [
    ///     {"execution": "e1",
    ///      "violations": [{"kind": "unreachable", "activity": "D"}]}
    ///   ]
    /// }
    /// ```
    pub fn to_json(&self) -> String {
        use crate::trace::escape;
        let pairs = |out: &mut String, list: &[(String, String)]| {
            out.push('[');
            for (i, (from, to)) in list.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"from\":\"{}\",\"to\":\"{}\"}}",
                    escape(from),
                    escape(to)
                ));
            }
            out.push(']');
        };
        let mut out = String::new();
        out.push_str(&format!("{{\"conformal\":{}", self.is_conformal()));
        out.push_str(",\"missing_dependencies\":");
        pairs(&mut out, &self.missing_dependencies);
        out.push_str(",\"spurious_dependencies\":");
        pairs(&mut out, &self.spurious_dependencies);
        out.push_str(",\"unknown_activities\":[");
        for (i, name) in self.unknown_activities.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\"", escape(name)));
        }
        out.push_str("],\"inconsistent_executions\":[");
        for (i, (exec, violations)) in self.inconsistent_executions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"execution\":\"{}\",\"violations\":[",
                escape(exec)
            ));
            for (j, v) in violations.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&v.to_json());
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

impl Violation {
    /// One violation as a JSON object with a discriminating `kind` field.
    fn to_json(&self) -> String {
        use crate::trace::escape;
        match self {
            Violation::UnknownActivity { activity } => format!(
                "{{\"kind\":\"unknown_activity\",\"activity\":\"{}\"}}",
                escape(activity)
            ),
            Violation::NotConnected => "{\"kind\":\"not_connected\"}".to_string(),
            Violation::WrongInitiating { found } => format!(
                "{{\"kind\":\"wrong_initiating\",\"found\":\"{}\"}}",
                escape(found)
            ),
            Violation::WrongTerminating { found } => format!(
                "{{\"kind\":\"wrong_terminating\",\"found\":\"{}\"}}",
                escape(found)
            ),
            Violation::Unreachable { activity } => format!(
                "{{\"kind\":\"unreachable\",\"activity\":\"{}\"}}",
                escape(activity)
            ),
            Violation::DependencyViolated { from, to } => format!(
                "{{\"kind\":\"dependency_violated\",\"from\":\"{}\",\"to\":\"{}\"}}",
                escape(from),
                escape(to)
            ),
        }
    }
}

/// Checks a model against a log for all three conformal-graph properties
/// (Definition 7).
///
/// The log's activity table is aligned to the model's nodes *by name*:
/// a model mined from this log shares the table outright (the identity
/// map, no overhead), while a foreign log may order activities
/// differently or mention activities the model has no node for. The
/// latter are reported in [`ConformanceReport::unknown_activities`];
/// executions and dependencies involving them are checked over the
/// known activities. This never panics.
pub fn check_conformance(model: &MinedModel, log: &WorkflowLog) -> ConformanceReport {
    check_conformance_in(&mut MineSession::new(), model, log)
}

/// [`check_conformance`] inside a [`MineSession`]: records the
/// closure/SCC/check timers and the report-level counters into the
/// session's sink (see [`ConformanceMetrics`]), and spans for the
/// closure, SCC and per-execution phases into its tracer (see
/// [`crate::trace`]). With a default session this is the plain twin.
pub fn check_conformance_in<S: MetricsSink<ConformanceMetrics>>(
    session: &mut MineSession<S>,
    model: &MinedModel,
    log: &WorkflowLog,
) -> ConformanceReport {
    let (sink, tracer) = session.handles();
    let _root = tracer.span_cat("check_conformance", "conformance");
    let g = model.graph();
    let n = g.node_count();
    let follows = FollowsAnalysis::analyze(log);
    let n_log = follows.activity_count();

    // Align the log's activity table to the model's nodes by name. A
    // model mined from this log shares the table, so the map is the
    // identity and executions can be checked without remapping.
    let node_by_name: HashMap<&str, usize> = (0..n)
        .map(|i| (g.node(NodeId::new(i)).as_str(), i))
        .collect();
    let log_names = log.activities().names();
    let map: Vec<Option<usize>> = log_names
        .iter()
        .map(|name| node_by_name.get(name.as_str()).copied())
        .collect();
    let identity = map.iter().enumerate().all(|(i, &m)| m == Some(i));

    let mut report = ConformanceReport::default();
    for (i, m) in map.iter().enumerate() {
        if m.is_none() {
            report.unknown_activities.push(log_names[i].clone());
        }
    }

    let closure_span = tracer.span_cat("closure", "conformance");
    let started = S::ENABLED.then(Instant::now);
    let closure = reach::transitive_closure(g);
    if let Some(s) = started {
        let nanos = s.elapsed().as_nanos() as u64;
        sink.record(|m| m.closure_nanos += nanos);
    }
    drop(closure_span);
    let scc_span = tracer.span_cat("scc", "conformance");
    let started = S::ENABLED.then(Instant::now);
    let sccs = scc::tarjan_scc(g);
    if let Some(s) = started {
        let nanos = s.elapsed().as_nanos() as u64;
        sink.record(|m| m.scc_nanos += nanos);
    }
    drop(scc_span);

    let deps_span = tracer.span_cat("dependency_checks", "conformance");
    for u in 0..n_log {
        for v in 0..n_log {
            if u == v {
                continue;
            }
            match (map[u], map[v]) {
                (Some(mu), Some(mv)) => {
                    let path = closure.has_edge(mu, mv);
                    let same_cycle = sccs.same_component(NodeId::new(mu), NodeId::new(mv));
                    if follows.depends(u, v) && !path {
                        report
                            .missing_dependencies
                            .push((log_names[u].clone(), log_names[v].clone()));
                    }
                    if follows.independent(u, v) && path && !same_cycle {
                        report
                            .spurious_dependencies
                            .push((log_names[u].clone(), log_names[v].clone()));
                    }
                }
                _ => {
                    // A dependency touching an activity the model lacks
                    // can never be a model path.
                    if follows.depends(u, v) {
                        report
                            .missing_dependencies
                            .push((log_names[u].clone(), log_names[v].clone()));
                    }
                }
            }
        }
    }
    drop(deps_span);

    let _exec_span = tracer.span_cat("execution_checks", "conformance");
    for exec in log.executions() {
        let violations = if identity {
            let started = S::ENABLED.then(Instant::now);
            let violations = check_execution_impl(model, exec);
            record_execution_check(sink, &violations, elapsed_nanos(started));
            violations
        } else {
            let started = S::ENABLED.then(Instant::now);
            let violations = check_foreign_execution(model, exec, &map, log_names);
            record_execution_check(sink, &violations, elapsed_nanos(started));
            violations
        };
        if !violations.is_empty() {
            report
                .inconsistent_executions
                .push((exec.id.clone(), violations));
        }
    }

    if S::ENABLED {
        let missing = report.missing_dependencies.len() as u64;
        let spurious = report.spurious_dependencies.len() as u64;
        let unknown = report.unknown_activities.len() as u64;
        sink.record(|m| {
            m.missing_dependencies += missing;
            m.spurious_dependencies += spurious;
            m.unknown_activities += unknown;
        });
    }
    report
}

/// Definition 6 for an execution whose activity ids live in a foreign
/// table: remap instances onto model node ids via `map` (log activity
/// index → model node), report unmapped activities by their log name,
/// and run the plain check over what remains.
fn check_foreign_execution(
    model: &MinedModel,
    exec: &Execution,
    map: &[Option<usize>],
    log_names: &[String],
) -> Vec<Violation> {
    let mut violations = Vec::new();
    let mut unknown_seen: Vec<usize> = Vec::new();
    let mut mapped: Vec<ActivityInstance> = Vec::new();
    for inst in exec.instances() {
        let idx = inst.activity.index();
        match map.get(idx).copied().flatten() {
            Some(node) => {
                let mut remapped = inst.clone();
                remapped.activity = ActivityId::from_index(node);
                mapped.push(remapped);
            }
            None => {
                if !unknown_seen.contains(&idx) {
                    unknown_seen.push(idx);
                    let activity = log_names
                        .get(idx)
                        .cloned()
                        .unwrap_or_else(|| format!("#{idx}"));
                    violations.push(Violation::UnknownActivity { activity });
                }
            }
        }
    }
    if mapped.is_empty() {
        return violations;
    }
    // Infallible: `mapped` is non-empty (checked above) and remapping
    // changes only activity ids, never the validated intervals.
    #[allow(clippy::expect_used)]
    let remapped = Execution::new(exec.id.clone(), mapped)
        .expect("remapping preserves the original execution's validated intervals");
    violations.extend(check_execution_impl(model, &remapped));
    violations
}

/// Aggregate *fitness* of a log against a model: the fraction of
/// executions that are consistent (Definition 6), with a per-violation
/// breakdown. This is the replay-fitness notion process-mining practice
/// uses to score a purported model against reality — the paper's
/// "evaluation of the workflow system by comparing the synthesized
/// process graphs with purported graphs" application.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Fitness {
    /// Total executions checked.
    pub executions: usize,
    /// Executions with no violations.
    pub consistent: usize,
    /// Count of [`Violation::NotConnected`].
    pub not_connected: usize,
    /// Count of wrong initiating/terminating endpoints.
    pub wrong_endpoints: usize,
    /// Count of [`Violation::Unreachable`].
    pub unreachable: usize,
    /// Count of [`Violation::DependencyViolated`].
    pub dependency_violated: usize,
    /// Count of [`Violation::UnknownActivity`].
    pub unknown_activity: usize,
}

impl Fitness {
    /// Fraction of consistent executions (1.0 for an empty log).
    pub fn fraction(&self) -> f64 {
        if self.executions == 0 {
            1.0
        } else {
            self.consistent as f64 / self.executions as f64
        }
    }
}

/// Computes the replay fitness of `log` against `model`.
pub fn fitness(model: &MinedModel, log: &WorkflowLog) -> Fitness {
    let mut f = Fitness {
        executions: log.len(),
        ..Fitness::default()
    };
    for exec in log.executions() {
        let violations = check_execution(model, exec);
        if violations.is_empty() {
            f.consistent += 1;
        }
        for v in violations {
            match v {
                Violation::NotConnected => f.not_connected += 1,
                Violation::WrongInitiating { .. } | Violation::WrongTerminating { .. } => {
                    f.wrong_endpoints += 1
                }
                Violation::Unreachable { .. } => f.unreachable += 1,
                Violation::DependencyViolated { .. } => f.dependency_violated += 1,
                Violation::UnknownActivity { .. } => f.unknown_activity += 1,
            }
        }
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{mine_general_dag, mine_special_dag, MinerOptions};
    use procmine_graph::DiGraph;

    /// Figure 1 of the paper: A→B, A→C, B→E, C→D, C→E, D→E.
    fn figure1() -> (MinedModel, WorkflowLog) {
        // Build a log over A..E so activity ids are 0..5 in this order.
        let log = WorkflowLog::from_strings(["ABCDE"]).unwrap();
        let g = DiGraph::from_edges(
            vec!["A".into(), "B".into(), "C".into(), "D".into(), "E".into()],
            [(0, 1), (0, 2), (1, 4), (2, 3), (2, 4), (3, 4)],
        );
        (MinedModel::from_graph(g), log)
    }

    fn exec_of(log: &WorkflowLog, s: &str) -> Execution {
        let ids: Vec<_> = s
            .chars()
            .map(|c| log.activities().id(&c.to_string()).unwrap())
            .collect();
        Execution::from_ids(s, &ids).unwrap()
    }

    #[test]
    fn paper_example_4_consistent() {
        // ACBE is consistent with Figure 1.
        let (model, log) = figure1();
        let exec = exec_of(&log, "ACBE");
        assert_eq!(check_execution(&model, &exec), vec![]);
    }

    #[test]
    fn paper_example_4_inconsistent() {
        // ADBE is not: D is unreachable from A in the induced subgraph
        // (its only incoming edge comes from the absent C).
        let (model, log) = figure1();
        let exec = exec_of(&log, "ADBE");
        let violations = check_execution(&model, &exec);
        assert!(
            violations
                .iter()
                .any(|v| matches!(v, Violation::Unreachable { activity } if activity == "D")),
            "got {violations:?}"
        );
    }

    #[test]
    fn dependency_order_violation_detected() {
        let (model, log) = figure1();
        // B before A contradicts A→B.
        let exec = exec_of(&log, "BACDE");
        let violations = check_execution(&model, &exec);
        assert!(violations.iter().any(
            |v| matches!(v, Violation::DependencyViolated { from, to } if from == "A" && to == "B")
        ));
        assert!(violations
            .iter()
            .any(|v| matches!(v, Violation::WrongInitiating { found } if found == "B")));
    }

    #[test]
    fn wrong_terminating_detected() {
        let (model, log) = figure1();
        let exec = exec_of(&log, "ABCD");
        let violations = check_execution(&model, &exec);
        assert!(violations
            .iter()
            .any(|v| matches!(v, Violation::WrongTerminating { found } if found == "D")));
    }

    #[test]
    fn mined_special_models_are_conformal() {
        let log = WorkflowLog::from_strings(["ABCDE", "ACDBE", "ACBDE"]).unwrap();
        let model = mine_special_dag(&log, &MinerOptions::default()).unwrap();
        let report = check_conformance(&model, &log);
        assert!(report.is_conformal(), "{report:?}");
    }

    #[test]
    fn mined_general_models_are_conformal() {
        for strings in [
            vec!["ABCF", "ACDF", "ADEF", "AECF"],
            vec!["ADCE", "ABCDE"],
            vec!["ACF", "ADCF", "ABCF", "ADECF"],
            vec!["ABCD", "ACD"],
        ] {
            let log = WorkflowLog::from_strings(strings.clone()).unwrap();
            let model = mine_general_dag(&log, &MinerOptions::default()).unwrap();
            let report = check_conformance(&model, &log);
            assert!(report.is_conformal(), "log {strings:?}: {report:?}");
        }
    }

    #[test]
    fn missing_dependency_reported() {
        // Log forces A→B dependency; an edgeless model misses it.
        let log = WorkflowLog::from_strings(["AB", "AB"]).unwrap();
        let g = DiGraph::from_edges(vec!["A".into(), "B".into()], std::iter::empty());
        let model = MinedModel::from_graph(g);
        let report = check_conformance(&model, &log);
        assert!(report
            .missing_dependencies
            .contains(&("A".to_string(), "B".to_string())));
        assert!(!report.is_conformal());
    }

    #[test]
    fn spurious_dependency_reported() {
        // B and C appear in both orders → independent; a model chaining
        // B→C introduces a spurious dependency.
        let log = WorkflowLog::from_strings(["ABCD", "ACBD"]).unwrap();
        let g = DiGraph::from_edges(
            vec!["A".into(), "B".into(), "C".into(), "D".into()],
            [(0, 1), (1, 2), (2, 3)],
        );
        let model = MinedModel::from_graph(g);
        let report = check_conformance(&model, &log);
        assert!(report
            .spurious_dependencies
            .contains(&("B".to_string(), "C".to_string())));
    }

    #[test]
    fn figure2_second_graph_fails_execution_completeness() {
        // Example 5: log {ADCE, ABCDE}; the second Figure-2 graph chains
        // … C→D …, forbidding ADCE (D before C).
        let log = WorkflowLog::from_strings(["ADCE", "ABCDE"]).unwrap();
        // Activity order in table: A,D,C,E,B → indices A=0,D=1,C=2,E=3,B=4.
        // Second graph of Figure 2: A→B, B→C, A→D? Paper's second graph:
        // A→B→C→D→E with D reachable only after C. Build edges by name.
        let names: Vec<String> = log.activities().names().to_vec();
        let idx = |s: &str| log.activities().id(s).unwrap().index();
        let g = DiGraph::from_edges(
            names,
            [
                (idx("A"), idx("B")),
                (idx("A"), idx("D")),
                (idx("B"), idx("C")),
                (idx("D"), idx("C")),
                (idx("C"), idx("E")),
                (idx("C"), idx("D")),
            ],
        );
        // This graph has both C→D and D→C — a cycle — so instead test
        // the straightforward inconsistent model: A→B→C→D→E chain.
        drop(g);
        let names: Vec<String> = log.activities().names().to_vec();
        let chain = DiGraph::from_edges(
            names,
            [
                (idx("A"), idx("B")),
                (idx("B"), idx("C")),
                (idx("C"), idx("D")),
                (idx("D"), idx("E")),
            ],
        );
        let model = MinedModel::from_graph(chain);
        let report = check_conformance(&model, &log);
        assert!(!report.is_conformal());
        assert!(!report.inconsistent_executions.is_empty());
    }

    #[test]
    fn fitness_counts_violation_kinds() {
        let (model, log) = figure1();
        let mut mixed = WorkflowLog::with_activities(log.activities().clone());
        mixed.push(exec_of(&log, "ACBE")); // consistent
        mixed.push(exec_of(&log, "ABCDE")); // consistent (full)
        mixed.push(exec_of(&log, "ADBE")); // D unreachable
        mixed.push(exec_of(&log, "BACDE")); // wrong start + dependency

        let f = fitness(&model, &mixed);
        assert_eq!(f.executions, 4);
        assert_eq!(f.consistent, 2);
        assert_eq!(f.fraction(), 0.5);
        // ADBE: D unreachable from A. BACDE: reachability is taken from
        // the observed first activity B, so A, C, D all count.
        assert_eq!(f.unreachable, 4);
        assert!(f.wrong_endpoints >= 1);
        assert!(f.dependency_violated >= 1);
    }

    #[test]
    fn fitness_of_empty_log_is_one() {
        let (model, _) = figure1();
        let empty = WorkflowLog::new();
        // An empty log over a different table: check_execution is never
        // called, so the table mismatch is irrelevant.
        let f = fitness(&model, &empty);
        assert_eq!(f.fraction(), 1.0);
    }

    #[test]
    fn not_connected_detected() {
        // B and D share no edge in Figure 1: the induced subgraph over
        // {B, D} has two components.
        let (model, log) = figure1();
        let exec = exec_of(&log, "BD");
        let violations = check_execution(&model, &exec);
        assert!(
            violations.contains(&Violation::NotConnected),
            "{violations:?}"
        );
    }

    #[test]
    fn unknown_activity_id_reported_not_panicked() {
        // The execution's table has an F (id 5) the 5-node model lacks.
        let (model, _) = figure1();
        let log = WorkflowLog::from_strings(["ABCDEF"]).unwrap();
        let exec = exec_of(&log, "ABCDEF");
        let violations = check_execution(&model, &exec);
        assert_eq!(
            violations,
            vec![Violation::UnknownActivity {
                activity: "#5".to_string()
            }],
            "the known prefix ABCDE is consistent; only F is foreign"
        );
    }

    #[test]
    fn execution_of_only_unknown_activities_is_inconsistent_not_fatal() {
        let log = WorkflowLog::from_strings(["AB"]).unwrap();
        let model = mine_special_dag(&log, &MinerOptions::default()).unwrap();
        let foreign = WorkflowLog::from_strings(["XY"]).unwrap();
        let report = check_conformance(&model, &foreign);
        assert_eq!(
            report.unknown_activities,
            vec!["X".to_string(), "Y".to_string()]
        );
        assert_eq!(report.inconsistent_executions.len(), 1);
        assert!(!report.is_conformal());
    }

    #[test]
    fn foreign_table_does_not_panic_check_conformance() {
        // Log mentions an X the model has never heard of, alongside
        // known activities.
        let (model, _) = figure1();
        let foreign = WorkflowLog::from_strings(["AXB", "AXB"]).unwrap();
        let report = check_conformance(&model, &foreign);
        assert!(report.unknown_activities.contains(&"X".to_string()));
        assert!(!report.is_conformal());
        // The dependency A→X can never be a path in a model without X.
        assert!(report
            .missing_dependencies
            .contains(&("A".to_string(), "X".to_string())));
        // Every execution contains the unknown X.
        assert_eq!(report.inconsistent_executions.len(), 2);
        for (_, violations) in &report.inconsistent_executions {
            assert!(violations
                .iter()
                .any(|v| matches!(v, Violation::UnknownActivity { activity } if activity == "X")));
        }
    }

    #[test]
    fn smaller_foreign_table_checks_known_subset() {
        // n_log < n: the old assert would have aborted here.
        let (model, _) = figure1();
        let small = WorkflowLog::from_strings(["AB"]).unwrap();
        let report = check_conformance(&model, &small);
        assert!(report.unknown_activities.is_empty());
        // AB stops at B, not the model's terminating E.
        assert!(report.inconsistent_executions.iter().any(|(_, vs)| vs
            .iter()
            .any(|v| matches!(v, Violation::WrongTerminating { found } if found == "B"))));
    }

    #[test]
    fn foreign_table_aligned_by_name() {
        // Same activities, same executions, but the foreign log's table
        // interns B before A. Alignment by name keeps the model
        // conformal; the old code asserted or checked garbage ids.
        let log = WorkflowLog::from_strings(["AB", "AB"]).unwrap();
        let model = mine_special_dag(&log, &MinerOptions::default()).unwrap();
        let table = procmine_log::ActivityTable::from_names(["B", "A"]);
        let mut foreign = WorkflowLog::with_activities(table);
        let a = foreign.activities().id("A").unwrap();
        let b = foreign.activities().id("B").unwrap();
        foreign.push(Execution::from_ids("x1", &[a, b]).unwrap());
        foreign.push(Execution::from_ids("x2", &[a, b]).unwrap());
        let report = check_conformance(&model, &foreign);
        assert!(report.is_conformal(), "{report:?}");
    }

    #[test]
    fn session_conformance_matches_plain() {
        use crate::telemetry::ConformanceMetrics;
        let (model, log) = figure1();
        let mut mixed = WorkflowLog::with_activities(log.activities().clone());
        mixed.push(exec_of(&log, "ACBE")); // consistent
        mixed.push(exec_of(&log, "ADBE")); // D unreachable
        mixed.push(exec_of(&log, "BACDE")); // wrong start + dependency

        let plain = check_conformance(&model, &mixed);
        let mut metrics = ConformanceMetrics::new();
        let mut session = MineSession::new().with_sink(&mut metrics);
        let instrumented = check_conformance_in(&mut session, &model, &mixed);
        drop(session);
        assert_eq!(plain, instrumented);

        assert_eq!(metrics.executions_checked, 3);
        assert_eq!(metrics.consistent_executions, 1);
        assert!(metrics.violations_unreachable >= 1);
        assert!(metrics.violations_wrong_initiating >= 1);
        assert!(metrics.violations_dependency >= 1);
        assert_eq!(
            metrics.missing_dependencies,
            plain.missing_dependencies.len() as u64
        );
        assert_eq!(
            metrics.spurious_dependencies,
            plain.spurious_dependencies.len() as u64
        );
        assert_eq!(metrics.unknown_activities, 0);
    }

    #[test]
    fn session_conformance_counts_unknowns_on_foreign_log() {
        use crate::telemetry::ConformanceMetrics;
        let (model, _) = figure1();
        let foreign = WorkflowLog::from_strings(["AXB"]).unwrap();
        let plain = check_conformance(&model, &foreign);
        let mut metrics = ConformanceMetrics::new();
        let mut session = MineSession::new().with_sink(&mut metrics);
        let instrumented = check_conformance_in(&mut session, &model, &foreign);
        drop(session);
        assert_eq!(plain, instrumented);
        assert_eq!(metrics.unknown_activities, 1);
        assert_eq!(metrics.violations_unknown_activity, 1);
        assert_eq!(metrics.executions_checked, 1);
    }

    #[test]
    fn session_execution_check_matches_plain() {
        use crate::telemetry::ConformanceMetrics;
        let (model, log) = figure1();
        let exec = exec_of(&log, "ADBE");
        let mut metrics = ConformanceMetrics::new();
        let mut session = MineSession::new().with_sink(&mut metrics);
        assert_eq!(
            check_execution(&model, &exec),
            check_execution_in(&mut session, &model, &exec)
        );
        drop(session);
        assert_eq!(metrics.executions_checked, 1);
        assert_eq!(metrics.consistent_executions, 0);
        assert!(metrics.violations_unreachable >= 1);
    }

    #[test]
    fn fitness_counts_unknown_activities() {
        let (model, _) = figure1();
        let log = WorkflowLog::from_strings(["ABCDEF"]).unwrap();
        let f = fitness(&model, &log);
        assert_eq!(f.unknown_activity, 1);
        assert_eq!(f.consistent, 0);
    }

    #[test]
    fn report_json_is_well_formed_and_complete() {
        let (model, _) = figure1();
        let foreign = WorkflowLog::from_strings(["AXB", "AXB"]).unwrap();
        let report = check_conformance(&model, &foreign);
        let json = report.to_json();
        // Well-formed per the vendored parser, with the expected fields.
        let value: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        for expected in [
            "conformal",
            "missing_dependencies",
            "spurious_dependencies",
            "unknown_activities",
            "inconsistent_executions",
        ] {
            assert!(value.get(expected).is_some(), "missing key {expected}");
        }
        assert!(json.contains("\"conformal\":false"));
        assert!(json.contains("\"unknown_activity\""));
        assert!(json.contains("\"X\""));

        // A conformal report renders too.
        let log = WorkflowLog::from_strings(["ABCDE"]).unwrap();
        let model = mine_special_dag(&log, &MinerOptions::default()).unwrap();
        let clean = check_conformance(&model, &log).to_json();
        let _: serde_json::Value = serde_json::from_str(&clean).expect("valid JSON");
        assert!(clean.contains("\"conformal\":true"));
    }

    #[test]
    fn report_json_escapes_activity_names() {
        let report = ConformanceReport {
            unknown_activities: vec!["a\"b".to_string()],
            ..ConformanceReport::default()
        };
        let json = report.to_json();
        assert!(json.contains("a\\\"b"));
        let _: serde_json::Value =
            serde_json::from_str(&json).expect("valid JSON despite quotes in names");
    }

    #[test]
    fn cyclic_model_pairs_in_scc_not_flagged() {
        use crate::mine_cyclic;
        let log = WorkflowLog::from_strings(["ABDCE", "ABDCBCE", "ABCBDCE", "ADE"]).unwrap();
        let model = mine_cyclic(&log, &MinerOptions::default()).unwrap();
        let report = check_conformance(&model, &log);
        // B and C cycle: they are independent by Definition 4 but the
        // mutual paths must not be flagged as spurious.
        assert!(!report
            .spurious_dependencies
            .iter()
            .any(|(a, b)| (a == "B" && b == "C") || (a == "C" && b == "B")));
    }
}
