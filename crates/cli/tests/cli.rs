//! Integration tests driving the `procmine` binary end-to-end.

use std::path::PathBuf;
use std::process::{Command, Output};

fn procmine(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_procmine"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("procmine-cli-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn help_prints_usage() {
    for args in [vec!["help"], vec!["--help"], vec![]] {
        let out = procmine(&args);
        assert!(out.status.success());
        let text = String::from_utf8(out.stdout).unwrap();
        assert!(text.contains("USAGE"), "{text}");
        assert!(text.contains("generate") && text.contains("mine"));
    }
}

#[test]
fn unknown_command_fails_with_message() {
    let out = procmine(&["frobnicate"]);
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown command"), "{err}");
}

#[test]
fn generate_mine_check_pipeline() {
    let dir = tmpdir("pipeline");
    let log = dir.join("g10.fm");
    let dot = dir.join("model.dot");
    let json = dir.join("model.json");

    let out = procmine(&[
        "generate",
        "--preset",
        "graph10",
        "--executions",
        "200",
        "--seed",
        "7",
        "-o",
        log.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = procmine(&[
        "mine",
        log.to_str().unwrap(),
        "--check",
        "--dot",
        dot.to_str().unwrap(),
        "--json",
        json.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("conformance: OK"), "{text}");

    let dot_text = std::fs::read_to_string(&dot).unwrap();
    assert!(dot_text.starts_with("digraph"));

    // The saved model checks out against the same log via `check`.
    let out = procmine(&["check", json.to_str().unwrap(), log.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn info_reports_statistics() {
    let dir = tmpdir("info");
    let log = dir.join("log.fm");
    procmine(&[
        "generate",
        "--preset",
        "pend",
        "--executions",
        "50",
        "-o",
        log.to_str().unwrap(),
    ]);
    let out = procmine(&["info", log.to_str().unwrap()]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("executions:  50"), "{text}");
    assert!(text.contains("activities:  6"), "{text}");
}

#[test]
fn conditions_on_engine_log() {
    let dir = tmpdir("conditions");
    let log = dir.join("orders.fm");
    let out = procmine(&[
        "generate",
        "--preset",
        "order",
        "--engine",
        "conditions",
        "--executions",
        "300",
        "-o",
        log.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = procmine(&["conditions", log.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("Assess -> ManagerApproval"), "{text}");
    assert!(text.contains("o[0] >"), "learned a threshold rule: {text}");
}

#[test]
fn mine_missing_file_fails_cleanly() {
    let out = procmine(&["mine", "/nonexistent/nope.fm"]);
    assert!(!out.status.success());
    assert!(!String::from_utf8_lossy(&out.stderr).is_empty());
}

#[test]
fn seqs_format_roundtrip_via_cli() {
    let dir = tmpdir("seqs");
    let log = dir.join("log.seqs");
    procmine(&[
        "generate",
        "--preset",
        "uwi",
        "--executions",
        "40",
        "--format",
        "seqs",
        "-o",
        log.to_str().unwrap(),
    ]);
    let text = std::fs::read_to_string(&log).unwrap();
    assert!(text.lines().count() == 40);
    assert!(text.starts_with("Start "));
    let out = procmine(&["mine", log.to_str().unwrap(), "--format", "seqs", "--check"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn stream_mining_matches_batch() {
    let dir = tmpdir("stream");
    let log = dir.join("log.fm");
    procmine(&[
        "generate",
        "--preset",
        "uwi",
        "--executions",
        "120",
        "--seed",
        "3",
        "-o",
        log.to_str().unwrap(),
    ]);
    let batch = procmine(&["mine", log.to_str().unwrap()]);
    let stream = procmine(&["mine", log.to_str().unwrap(), "--stream"]);
    assert!(batch.status.success() && stream.status.success());
    let edges = |out: &[u8]| -> Vec<String> {
        String::from_utf8_lossy(out)
            .lines()
            .filter(|l| l.starts_with("  ") && l.contains(" -> "))
            .map(str::to_string)
            .collect()
    };
    let mut a = edges(&batch.stdout);
    let mut b = edges(&stream.stdout);
    a.sort();
    b.sort();
    assert_eq!(a, b);
}

#[test]
fn bpmn_export_produces_xml() {
    let dir = tmpdir("bpmn");
    let log = dir.join("log.fm");
    let bpmn = dir.join("model.bpmn");
    procmine(&[
        "generate",
        "--preset",
        "pend",
        "--executions",
        "80",
        "-o",
        log.to_str().unwrap(),
    ]);
    let out = procmine(&[
        "mine",
        log.to_str().unwrap(),
        "--bpmn",
        bpmn.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let xml = std::fs::read_to_string(&bpmn).unwrap();
    assert!(xml.contains("<definitions"));
    assert!(xml.contains("<task"));
    assert!(xml.contains("<sequenceFlow"));
}

#[test]
fn convert_between_formats_by_extension() {
    let dir = tmpdir("convert");
    let fm = dir.join("log.fm");
    let xes = dir.join("log.xes");
    let seqs = dir.join("log.seqs");
    procmine(&[
        "generate",
        "--preset",
        "upload",
        "--executions",
        "30",
        "-o",
        fm.to_str().unwrap(),
    ]);
    // fm -> xes -> seqs, formats inferred from extensions.
    let out = procmine(&["convert", fm.to_str().unwrap(), xes.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(std::fs::read_to_string(&xes).unwrap().contains("<log"));
    let out = procmine(&["convert", xes.to_str().unwrap(), seqs.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&seqs).unwrap();
    assert_eq!(text.lines().count(), 30);
    assert!(text.lines().all(|l| l.starts_with("Start ")));

    // Explicit --to overrides the extension.
    let odd = dir.join("log.data");
    let out = procmine(&[
        "convert",
        fm.to_str().unwrap(),
        odd.to_str().unwrap(),
        "--to",
        "jsonl",
    ]);
    assert!(out.status.success());
    assert!(std::fs::read_to_string(&odd).unwrap().starts_with('{'));
}

#[test]
fn stats_json_matches_mined_model() {
    let dir = tmpdir("stats");
    let log = dir.join("log.fm");
    let stats = dir.join("stats.json");
    procmine(&[
        "generate",
        "--preset",
        "graph10",
        "--executions",
        "200",
        "--seed",
        "11",
        "-o",
        log.to_str().unwrap(),
    ]);
    let out = procmine(&[
        "mine",
        log.to_str().unwrap(),
        "--stats",
        "--stats-json",
        stats.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();

    // The human table lists codec tallies, stages, and counters.
    assert!(text.contains("codec: "), "{text}");
    assert!(text.contains("count_pairs"), "{text}");
    assert!(text.contains("executions_scanned"), "{text}");

    let edge_lines = text
        .lines()
        .filter(|l| l.starts_with("  ") && l.contains(" -> "))
        .count() as u64;

    let json: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&stats).unwrap()).unwrap();
    let counters = json.get("counters").expect("counters object");
    assert_eq!(
        counters.get("executions_scanned").unwrap().as_u64(),
        Some(200)
    );
    assert_eq!(
        counters.get("edges_final").unwrap().as_u64(),
        Some(edge_lines),
        "stats edges_final must equal the edges the CLI printed"
    );
    let codec = json.get("codec").expect("codec object");
    assert_eq!(codec.get("executions_parsed").unwrap().as_u64(), Some(200));
    assert_eq!(
        codec.get("bytes_read").unwrap().as_u64(),
        Some(std::fs::metadata(&log).unwrap().len()),
        "codec must account for every byte of the log file"
    );
    for stage in ["lower", "count_pairs", "prune", "reduce", "assemble"] {
        assert!(
            json.get("stages_ns").unwrap().get(stage).is_some(),
            "missing stage {stage}"
        );
    }
    // The marking pass recycles its arena once per execution (reset
    // runs before each per-execution alloc), so the arena section must
    // report one reset per scanned execution and nonzero bytes.
    let arena = json.get("arena").expect("arena object");
    assert_eq!(arena.get("resets").unwrap().as_u64(), Some(200));
    assert!(arena.get("bytes").unwrap().as_u64().unwrap() > 0);
    assert!(arena.get("high_water_bytes").unwrap().as_u64().unwrap() > 0);
}

#[test]
fn stream_stats_report_miner_counters() {
    let dir = tmpdir("stream-stats");
    let log = dir.join("log.fm");
    let stats = dir.join("stats.json");
    procmine(&[
        "generate",
        "--preset",
        "uwi",
        "--executions",
        "60",
        "--seed",
        "9",
        "-o",
        log.to_str().unwrap(),
    ]);
    let out = procmine(&[
        "mine",
        log.to_str().unwrap(),
        "--stream",
        "--stats-json",
        stats.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&stats).unwrap()).unwrap();
    let counters = json.get("counters").expect("counters object");
    assert_eq!(
        counters.get("executions_scanned").unwrap().as_u64(),
        Some(60)
    );
    assert_eq!(
        json.get("codec")
            .unwrap()
            .get("executions_parsed")
            .unwrap()
            .as_u64(),
        Some(60)
    );
}

#[test]
fn check_stats_report_conformance_counters() {
    let dir = tmpdir("check-stats");
    let log = dir.join("log.fm");
    let model = dir.join("model.json");
    let stats = dir.join("stats.json");
    procmine(&[
        "generate",
        "--preset",
        "graph10",
        "--executions",
        "150",
        "--seed",
        "5",
        "-o",
        log.to_str().unwrap(),
    ]);
    let out = procmine(&[
        "mine",
        log.to_str().unwrap(),
        "--json",
        model.to_str().unwrap(),
    ]);
    assert!(out.status.success());

    let out = procmine(&[
        "check",
        model.to_str().unwrap(),
        log.to_str().unwrap(),
        "--stats",
        "--stats-json",
        stats.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("conformance counter"), "{text}");
    assert!(text.contains("executions_checked"), "{text}");
    assert!(text.contains("conformal"), "{text}");

    let json: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&stats).unwrap()).unwrap();
    let counters = json.get("counters").expect("counters object");
    assert_eq!(
        counters.get("executions_checked").unwrap().as_u64(),
        Some(150)
    );
    assert_eq!(
        counters.get("consistent_executions").unwrap().as_u64(),
        Some(150),
        "a model mined from this log must fit all of it"
    );
    let timers = json.get("timers_ns").expect("timers_ns object");
    for timer in ["closure", "scc", "execution_checks"] {
        assert!(timers.get(timer).is_some(), "missing timer {timer}");
    }
    assert_eq!(
        json.get("codec")
            .unwrap()
            .get("bytes_read")
            .unwrap()
            .as_u64(),
        Some(std::fs::metadata(&log).unwrap().len()),
        "check --stats must count every byte of the log it read"
    );
}

#[test]
fn parallel_mine_stats_include_wall_column() {
    let dir = tmpdir("wall-stats");
    let log = dir.join("log.fm");
    let stats = dir.join("stats.json");
    procmine(&[
        "generate",
        "--preset",
        "graph10",
        "--executions",
        "300",
        "--seed",
        "13",
        "-o",
        log.to_str().unwrap(),
    ]);
    let out = procmine(&[
        "mine",
        log.to_str().unwrap(),
        "--threads",
        "2",
        "--stats",
        "--stats-json",
        stats.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("cpu/wall"), "{text}");

    let json: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&stats).unwrap()).unwrap();
    let wall = json.get("stages_wall_ns").expect("stages_wall_ns object");
    let wall_of = |stage: &str| wall.get(stage).unwrap().as_u64().unwrap();
    assert!(wall_of("count_pairs") > 0, "barrier stage must be timed");
    assert!(wall_of("reduce") > 0, "barrier stage must be timed");
    assert_eq!(wall_of("lower"), 0, "non-barrier stages have no wall time");

    // The parallel run must still agree with the serial miner.
    let serial = procmine(&["mine", log.to_str().unwrap()]);
    let edges = |out: &[u8]| -> Vec<String> {
        String::from_utf8_lossy(out)
            .lines()
            .filter(|l| l.starts_with("  ") && l.contains(" -> "))
            .map(str::to_string)
            .collect()
    };
    let mut a = edges(&serial.stdout);
    let mut b = edges(&out.stdout);
    a.sort();
    b.sort();
    assert_eq!(a, b);
}

#[test]
fn stream_stats_count_real_codec_bytes() {
    let dir = tmpdir("stream-bytes");
    let log = dir.join("log.fm");
    let stats = dir.join("stats.json");
    procmine(&[
        "generate",
        "--preset",
        "pend",
        "--executions",
        "80",
        "--seed",
        "21",
        "-o",
        log.to_str().unwrap(),
    ]);
    let out = procmine(&[
        "mine",
        log.to_str().unwrap(),
        "--stream",
        "--stats-json",
        stats.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&stats).unwrap()).unwrap();
    let codec = json.get("codec").expect("codec object");
    assert_eq!(
        codec.get("bytes_read").unwrap().as_u64(),
        Some(std::fs::metadata(&log).unwrap().len()),
        "streaming codec must account for every byte"
    );
    assert!(codec.get("events_parsed").unwrap().as_u64().unwrap() > 0);
    assert_eq!(codec.get("executions_parsed").unwrap().as_u64(), Some(80));
}

#[test]
fn threads_and_stream_are_mutually_exclusive() {
    let dir = tmpdir("threads-stream");
    let log = dir.join("log.fm");
    procmine(&[
        "generate",
        "--preset",
        "uwi",
        "--executions",
        "10",
        "-o",
        log.to_str().unwrap(),
    ]);
    let out = procmine(&["mine", log.to_str().unwrap(), "--stream", "--threads", "2"]);
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--threads"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn check_reports_unknown_activities_without_panicking() {
    let dir = tmpdir("foreign-check");
    let train = dir.join("train.seqs");
    let foreign = dir.join("foreign.seqs");
    let model = dir.join("model.json");
    std::fs::write(&train, "A B C\nA B C\nA C\n").unwrap();
    std::fs::write(&foreign, "A B C\nA Zed C\n").unwrap();

    let out = procmine(&[
        "mine",
        train.to_str().unwrap(),
        "--format",
        "seqs",
        "--json",
        model.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Plain and instrumented paths must both diagnose, not panic.
    for extra in [&[][..], &["--stats"][..]] {
        let mut args = vec![
            "check",
            model.to_str().unwrap(),
            foreign.to_str().unwrap(),
            "--format",
            "seqs",
        ];
        args.extend_from_slice(extra);
        let out = procmine(&args);
        assert!(!out.status.success(), "a foreign log is not conformal");
        let text = String::from_utf8(out.stdout).unwrap();
        assert!(text.contains("not conformal"), "{text}");
        assert!(text.contains("unknown activity: Zed"), "{text}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(!err.contains("panicked"), "{err}");
    }
}

#[test]
fn conditions_stats_report_classify_counters() {
    let dir = tmpdir("cond-stats");
    let log = dir.join("orders.fm");
    let stats = dir.join("stats.json");
    procmine(&[
        "generate",
        "--preset",
        "order",
        "--engine",
        "conditions",
        "--executions",
        "200",
        "--seed",
        "2",
        "-o",
        log.to_str().unwrap(),
    ]);
    let out = procmine(&[
        "conditions",
        log.to_str().unwrap(),
        "--stats",
        "--stats-json",
        stats.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("classify counter"), "{text}");
    assert!(text.contains("trees_fitted"), "{text}");

    let json: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&stats).unwrap()).unwrap();
    let classify = json.get("classify").expect("classify object");
    let counters = classify.get("counters").expect("classify counters");
    let edge_lines = text
        .lines()
        .filter(|l| !l.starts_with(' ') && l.contains(" -> "))
        .count() as u64;
    assert_eq!(
        counters.get("edges_considered").unwrap().as_u64(),
        Some(edge_lines),
        "every printed edge must be counted"
    );
    assert!(counters.get("trees_fitted").unwrap().as_u64().unwrap() > 0);
    assert!(
        classify
            .get("timers_ns")
            .unwrap()
            .get("learn")
            .unwrap()
            .as_u64()
            .unwrap()
            > 0
    );
    // Miner fields ride along at the top level.
    assert!(json.get("counters").is_some());
    assert!(json.get("stages_ns").is_some());
}

#[test]
fn bad_flags_are_reported() {
    let out = procmine(&["mine", "--definitely-not-a-flag"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown flag"));

    let out = procmine(&["generate", "--preset", "nope"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown preset"));
}

/// A small valid flowmark log (two executions of A then B) with one
/// garbage line spliced into the middle.
fn corrupted_flowmark(dir: &std::path::Path) -> PathBuf {
    let log = dir.join("corrupt.fm");
    std::fs::write(
        &log,
        "case1,A,START,1\n\
         case1,A,END,2\n\
         this line is not an event record\n\
         case1,B,START,3\n\
         case1,B,END,4\n\
         case2,A,START,5\n\
         case2,A,END,6\n\
         case2,B,START,7\n\
         case2,B,END,8\n",
    )
    .unwrap();
    log
}

#[test]
fn mine_aborts_on_corruption_without_recover() {
    let dir = tmpdir("strict-corrupt");
    let log = corrupted_flowmark(&dir);
    let out = procmine(&["mine", log.to_str().unwrap()]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("line 3"), "{err}");
}

#[test]
fn mine_recover_skips_corruption_and_reports() {
    let dir = tmpdir("recover-corrupt");
    let log = corrupted_flowmark(&dir);
    let out = procmine(&["mine", log.to_str().unwrap(), "--recover"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("2 executions"), "{text}");
    assert!(text.contains("A -> B"), "{text}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("1 decode errors"), "{err}");
}

#[test]
fn mine_max_errors_budget_is_enforced() {
    let dir = tmpdir("max-errors");
    let log = corrupted_flowmark(&dir);
    // A budget of 1 tolerates the single bad line...
    let out = procmine(&["mine", log.to_str().unwrap(), "--max-errors", "1"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // ...but a budget of 0 rejects it.
    let out = procmine(&["mine", log.to_str().unwrap(), "--max-errors", "0"]);
    assert!(!out.status.success());
}

#[test]
fn mine_recover_ingest_lands_in_stats_json() {
    let dir = tmpdir("recover-stats");
    let log = corrupted_flowmark(&dir);
    let stats = dir.join("stats.json");
    let out = procmine(&[
        "mine",
        log.to_str().unwrap(),
        "--recover",
        "--stats-json",
        stats.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&stats).unwrap()).unwrap();
    let ingest = json.get("ingest").expect("ingest key present");
    assert_eq!(ingest.get("errors_total").unwrap().as_u64(), Some(1));
    assert_eq!(ingest.get("records_skipped").unwrap().as_u64(), Some(1));
}

#[test]
fn check_recovers_from_corruption() {
    let dir = tmpdir("check-recover");
    let log = corrupted_flowmark(&dir);
    let model = dir.join("model.json");
    let out = procmine(&[
        "mine",
        log.to_str().unwrap(),
        "--recover",
        "--json",
        model.to_str().unwrap(),
    ]);
    assert!(out.status.success());

    // Strict check aborts on the bad line; --recover passes.
    let out = procmine(&["check", model.to_str().unwrap(), log.to_str().unwrap()]);
    assert!(!out.status.success());
    let out = procmine(&[
        "check",
        model.to_str().unwrap(),
        log.to_str().unwrap(),
        "--recover",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn mine_deadline_ms_aborts_mining() {
    let dir = tmpdir("deadline");
    let log = dir.join("big.fm");
    let out = procmine(&[
        "generate",
        "--preset",
        "graph10",
        "--executions",
        "20000",
        "-o",
        log.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let out = procmine(&["mine", log.to_str().unwrap(), "--deadline-ms", "1"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("deadline"), "{err}");
}

#[test]
fn mine_trace_writes_chrome_trace_with_worker_lanes() {
    let dir = tmpdir("trace");
    let log = dir.join("log.fm");
    let trace = dir.join("trace.json");
    let out = procmine(&[
        "generate",
        "--preset",
        "graph10",
        "--executions",
        "400",
        "--seed",
        "3",
        "-o",
        log.to_str().unwrap(),
    ]);
    assert!(out.status.success());

    let out = procmine(&[
        "mine",
        log.to_str().unwrap(),
        "--threads",
        "4",
        "--trace",
        trace.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let json: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&trace).unwrap()).unwrap();
    let events = match json.get("traceEvents") {
        Some(serde_json::Value::Seq(events)) => events.clone(),
        other => panic!("traceEvents missing: {other:?}"),
    };
    let names: Vec<String> = events
        .iter()
        .filter(|e| matches!(e.get("ph"), Some(serde_json::Value::Str(p)) if p == "X"))
        .filter_map(|e| match e.get("name") {
            Some(serde_json::Value::Str(n)) => Some(n.clone()),
            _ => None,
        })
        .collect();
    // Codec ingestion, the parallel miner root, and per-worker spans
    // all land in one trace file.
    for expected in ["ingest.flowmark", "mine.parallel", "count_pairs.worker"] {
        assert!(
            names.iter().any(|n| n == expected),
            "span `{expected}` missing from {names:?}"
        );
    }
    // Worker spans occupy lanes above the main thread.
    let worker_tids: Vec<u64> = events
        .iter()
        .filter(|e| {
            matches!(e.get("name"), Some(serde_json::Value::Str(n)) if n == "count_pairs.worker")
        })
        .filter_map(|e| e.get("tid").and_then(serde_json::Value::as_u64))
        .collect();
    assert!(
        worker_tids.iter().all(|&t| t >= 1),
        "worker spans on the main lane: {worker_tids:?}"
    );
}

#[test]
fn mine_without_trace_flag_writes_no_trace_file() {
    let dir = tmpdir("no-trace");
    let log = dir.join("log.fm");
    procmine(&[
        "generate",
        "--preset",
        "upload",
        "--executions",
        "50",
        "-o",
        log.to_str().unwrap(),
    ]);
    let out = procmine(&["mine", log.to_str().unwrap()]);
    assert!(out.status.success());
    assert!(!dir.join("trace.json").exists());
}

#[test]
fn check_json_emits_machine_readable_report() {
    let dir = tmpdir("check-json");
    let log = dir.join("log.fm");
    let model = dir.join("model.json");
    procmine(&[
        "generate",
        "--preset",
        "graph10",
        "--executions",
        "120",
        "--seed",
        "9",
        "-o",
        log.to_str().unwrap(),
    ]);
    let out = procmine(&[
        "mine",
        log.to_str().unwrap(),
        "--json",
        model.to_str().unwrap(),
    ]);
    assert!(out.status.success());

    // Conformal case: exit 0, "conformal": true, empty violation lists.
    let out = procmine(&[
        "check",
        model.to_str().unwrap(),
        log.to_str().unwrap(),
        "--json",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    let report: serde_json::Value = serde_json::from_str(&stdout)
        .unwrap_or_else(|e| panic!("check --json stdout must be pure JSON ({e}): {stdout}"));
    assert!(matches!(
        report.get("conformal"),
        Some(serde_json::Value::Bool(true))
    ));
    for list in [
        "missing_dependencies",
        "spurious_dependencies",
        "unknown_activities",
        "inconsistent_executions",
    ] {
        assert!(
            matches!(report.get(list), Some(serde_json::Value::Seq(v)) if v.is_empty()),
            "{list} must be an empty array: {stdout}"
        );
    }

    // Non-conformal case (foreign log): nonzero exit, but the report
    // still lands on stdout with the offending activities listed.
    let foreign = dir.join("foreign.fm");
    procmine(&[
        "generate",
        "--preset",
        "upload",
        "--executions",
        "30",
        "-o",
        foreign.to_str().unwrap(),
    ]);
    let out = procmine(&[
        "check",
        model.to_str().unwrap(),
        foreign.to_str().unwrap(),
        "--json",
    ]);
    assert!(!out.status.success(), "foreign log must fail the check");
    let stdout = String::from_utf8(out.stdout).unwrap();
    let report: serde_json::Value = serde_json::from_str(&stdout).unwrap();
    assert!(matches!(
        report.get("conformal"),
        Some(serde_json::Value::Bool(false))
    ));
}

#[test]
fn check_trace_covers_conformance_stages() {
    let dir = tmpdir("check-trace");
    let log = dir.join("log.fm");
    let model = dir.join("model.json");
    let trace = dir.join("trace.json");
    procmine(&[
        "generate",
        "--preset",
        "graph10",
        "--executions",
        "100",
        "-o",
        log.to_str().unwrap(),
    ]);
    let out = procmine(&[
        "mine",
        log.to_str().unwrap(),
        "--json",
        model.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let out = procmine(&[
        "check",
        model.to_str().unwrap(),
        log.to_str().unwrap(),
        "--trace",
        trace.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let text = std::fs::read_to_string(&trace).unwrap();
    let _: serde_json::Value = serde_json::from_str(&text).expect("trace parses");
    for span in ["check_conformance", "closure", "execution_checks"] {
        assert!(text.contains(&format!("\"name\":\"{span}\"")), "{span}");
    }
}

// ---------------------------------------------------------------------------
// Broken-pipe behaviour (`procmine … | head`).
// ---------------------------------------------------------------------------

/// Exit status for a stdout closed mid-write: 128 + SIGPIPE.
const SIGPIPE_EXIT: i32 = 141;

/// Runs the binary with stdout piped, immediately closes the read end,
/// and returns (exit code, stderr). Any write to stdout after the close
/// hits EPIPE.
fn run_with_closed_stdout(args: &[&str]) -> (Option<i32>, String) {
    use std::io::Read;
    use std::process::Stdio;
    let mut child = Command::new(env!("CARGO_BIN_EXE_procmine"))
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary spawns");
    drop(child.stdout.take()); // close the read end: writes now EPIPE
    let mut stderr = String::new();
    if let Some(mut err) = child.stderr.take() {
        err.read_to_string(&mut stderr).unwrap();
    }
    let status = child.wait().unwrap();
    (status.code(), stderr)
}

#[test]
fn generate_to_closed_stdout_exits_quietly() {
    // Enough output to overflow any pipe buffer, so a write is
    // guaranteed to fail with EPIPE after the reader is gone.
    let (code, stderr) = run_with_closed_stdout(&[
        "generate",
        "--preset",
        "graph10",
        "--executions",
        "5000",
        "--seed",
        "7",
    ]);
    assert_eq!(code, Some(SIGPIPE_EXIT), "stderr: {stderr}");
    assert!(!stderr.contains("panicked"), "panic banner: {stderr}");
    assert!(
        !stderr.contains("RUST_BACKTRACE"),
        "backtrace hint: {stderr}"
    );
}

#[test]
fn mine_to_closed_stdout_does_not_panic() {
    let dir = tmpdir("epipe-mine");
    let log = dir.join("g10.fm");
    let out = procmine(&[
        "generate",
        "--preset",
        "graph10",
        "--executions",
        "200",
        "--seed",
        "7",
        "-o",
        log.to_str().unwrap(),
    ]);
    assert!(out.status.success());

    let (code, stderr) = run_with_closed_stdout(&["mine", log.to_str().unwrap()]);
    // Small outputs may complete before the first failed write is
    // attempted; both a clean exit and the SIGPIPE status are fine.
    // What must never happen is a panic.
    assert!(
        code == Some(0) || code == Some(SIGPIPE_EXIT),
        "unexpected exit {code:?}, stderr: {stderr}"
    );
    assert!(!stderr.contains("panicked"), "panic banner: {stderr}");
}

#[test]
fn help_to_closed_stdout_does_not_panic() {
    let (code, stderr) = run_with_closed_stdout(&["help"]);
    assert!(
        code == Some(0) || code == Some(SIGPIPE_EXIT),
        "unexpected exit {code:?}, stderr: {stderr}"
    );
    assert!(!stderr.contains("panicked"), "panic banner: {stderr}");
}

// --- mine --follow ---------------------------------------------------

fn edge_lines(out: &[u8]) -> Vec<String> {
    let mut lines: Vec<String> = String::from_utf8_lossy(out)
        .lines()
        .filter(|l| l.starts_with("  ") && l.contains(" -> "))
        .map(str::to_string)
        .collect();
    lines.sort();
    lines
}

#[test]
fn follow_mine_matches_batch() {
    let dir = tmpdir("follow");
    let log = dir.join("log.fm");
    procmine(&[
        "generate",
        "--preset",
        "graph10",
        "--executions",
        "150",
        "--seed",
        "11",
        "-o",
        log.to_str().unwrap(),
    ]);
    let batch = procmine(&["mine", log.to_str().unwrap()]);
    let follow = procmine(&["mine", "--follow", log.to_str().unwrap()]);
    assert!(
        batch.status.success() && follow.status.success(),
        "batch: {}\nfollow: {}",
        String::from_utf8_lossy(&batch.stderr),
        String::from_utf8_lossy(&follow.stderr)
    );
    assert_eq!(edge_lines(&batch.stdout), edge_lines(&follow.stdout));
}

#[test]
fn follow_reads_stdin_and_reports_stats_json() {
    use std::io::Write;
    use std::process::Stdio;
    let dir = tmpdir("follow-stdin");
    let log = dir.join("log.fm");
    let stats = dir.join("stats.json");
    procmine(&[
        "generate",
        "--preset",
        "uwi",
        "--executions",
        "80",
        "--seed",
        "5",
        "-o",
        log.to_str().unwrap(),
    ]);
    let text = std::fs::read(&log).unwrap();

    let mut child = Command::new(env!("CARGO_BIN_EXE_procmine"))
        .args([
            "mine",
            "--follow",
            "-",
            "--stats-json",
            stats.to_str().unwrap(),
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child.stdin.take().unwrap().write_all(&text).unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let batch = procmine(&["mine", log.to_str().unwrap()]);
    assert_eq!(edge_lines(&batch.stdout), edge_lines(&out.stdout));

    let json = std::fs::read_to_string(&stats).unwrap();
    assert!(json.contains("\"codec\""), "{json}");
    assert!(json.contains("\"cases_evicted\""), "{json}");
}

#[test]
fn follow_assembles_interleaved_cases_that_break_contiguous_stream() {
    let dir = tmpdir("follow-interleave");
    let log = dir.join("interleaved.fm");
    // Two cases interleaved record-by-record: contiguous grouping would
    // split each into two fragments.
    std::fs::write(
        &log,
        "p1,A,START,0\n\
         p2,A,START,0\n\
         p1,A,END,1\n\
         p2,A,END,1\n\
         p1,B,START,2\n\
         p2,B,START,2\n\
         p1,B,END,3\n\
         p2,B,END,3\n",
    )
    .unwrap();
    let follow = procmine(&["mine", "--follow", log.to_str().unwrap()]);
    assert!(
        follow.status.success(),
        "{}",
        String::from_utf8_lossy(&follow.stderr)
    );
    let text = String::from_utf8_lossy(&follow.stdout);
    assert!(text.contains("2 executions"), "{text}");
    assert!(text.contains("A -> B"), "{text}");

    // The contiguous strict reader refuses the same input.
    let strict = procmine(&["mine", "--stream", log.to_str().unwrap()]);
    assert!(!strict.status.success());
    let err = String::from_utf8_lossy(&strict.stderr);
    assert!(err.contains("p1"), "{err}");
}

#[test]
fn follow_snapshot_every_emits_interim_snapshots() {
    let dir = tmpdir("follow-snap");
    let log = dir.join("log.fm");
    procmine(&[
        "generate",
        "--preset",
        "uwi",
        "--executions",
        "60",
        "--seed",
        "9",
        "-o",
        log.to_str().unwrap(),
    ]);
    let out = procmine(&[
        "mine",
        "--follow",
        log.to_str().unwrap(),
        "--snapshot-every",
        "50",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("snapshot @"), "{err}");
}

#[test]
fn follow_flag_validation() {
    let dir = tmpdir("follow-flags");
    let log = dir.join("log.fm");
    procmine(&[
        "generate",
        "--preset",
        "uwi",
        "--executions",
        "10",
        "-o",
        log.to_str().unwrap(),
    ]);
    let path = log.to_str().unwrap();
    // Incompatible combinations are rejected up front.
    for extra in [&["--stream"][..], &["--check"][..], &["--threads", "4"][..]] {
        let mut args = vec!["mine", "--follow", path];
        args.extend_from_slice(extra);
        let out = procmine(&args);
        assert!(!out.status.success(), "--follow {extra:?} should fail");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("follow"), "{err}");
    }
    // Follow-only flags require --follow.
    let out = procmine(&["mine", path, "--snapshot-every", "10"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--follow"), "{err}");
}

// --- mine --follow --checkpoint --------------------------------------

/// Splits flowmark `text` near the middle at a *case boundary* (first
/// field changes between consecutive lines), so neither half tears a
/// case apart — the final checkpoint of a clean session closes all
/// open cases, so a torn case would legitimately split into fragments.
fn split_at_case_boundary(text: &str) -> (String, String) {
    let lines: Vec<&str> = text.lines().collect();
    fn case_of(l: &str) -> &str {
        l.split(',').next().unwrap_or("")
    }
    let mut cut = lines.len() / 2;
    while cut < lines.len() && case_of(lines[cut - 1]) == case_of(lines[cut]) {
        cut += 1;
    }
    let head: String = lines[..cut].iter().map(|l| format!("{l}\n")).collect();
    let tail: String = lines[cut..].iter().map(|l| format!("{l}\n")).collect();
    (head, tail)
}

#[test]
fn follow_checkpoint_resume_across_restart_matches_batch() {
    let dir = tmpdir("follow-ckpt");
    let full = dir.join("full.fm");
    let live = dir.join("live.fm");
    let ck = dir.join("mine.ckpt");
    procmine(&[
        "generate",
        "--preset",
        "graph10",
        "--executions",
        "150",
        "--seed",
        "13",
        "-o",
        full.to_str().unwrap(),
    ]);
    let text = std::fs::read_to_string(&full).unwrap();
    let (head, tail) = split_at_case_boundary(&text);
    assert!(!head.is_empty() && !tail.is_empty());

    // Session 1: mine the first half, checkpointing along the way.
    std::fs::write(&live, &head).unwrap();
    let first = procmine(&[
        "mine",
        "--follow",
        live.to_str().unwrap(),
        "--checkpoint",
        ck.to_str().unwrap(),
        "--checkpoint-every",
        "25",
    ]);
    assert!(
        first.status.success(),
        "{}",
        String::from_utf8_lossy(&first.stderr)
    );
    let err = String::from_utf8_lossy(&first.stderr);
    assert!(err.contains("checkpoint @"), "{err}");
    assert!(ck.exists(), "checkpoint file written");

    // The log grows while the miner is down; session 2 resumes from
    // the saved position and only reads the tail.
    std::fs::write(&live, format!("{head}{tail}")).unwrap();
    let second = procmine(&[
        "mine",
        "--follow",
        live.to_str().unwrap(),
        "--checkpoint",
        ck.to_str().unwrap(),
        "--checkpoint-every",
        "25",
    ]);
    assert!(
        second.status.success(),
        "{}",
        String::from_utf8_lossy(&second.stderr)
    );
    let err = String::from_utf8_lossy(&second.stderr);
    assert!(err.contains("resuming from checkpoint @ byte"), "{err}");

    let batch = procmine(&["mine", full.to_str().unwrap()]);
    assert!(batch.status.success());
    assert_eq!(edge_lines(&batch.stdout), edge_lines(&second.stdout));
    let text = String::from_utf8_lossy(&second.stdout);
    assert!(text.contains("150 executions"), "{text}");
}

#[test]
fn follow_corrupt_checkpoint_refused_then_recover_cold_starts() {
    let dir = tmpdir("follow-ckpt-corrupt");
    let log = dir.join("log.fm");
    let ck = dir.join("mine.ckpt");
    procmine(&[
        "generate",
        "--preset",
        "uwi",
        "--executions",
        "60",
        "--seed",
        "3",
        "-o",
        log.to_str().unwrap(),
    ]);
    let first = procmine(&[
        "mine",
        "--follow",
        log.to_str().unwrap(),
        "--checkpoint",
        ck.to_str().unwrap(),
    ]);
    assert!(
        first.status.success(),
        "{}",
        String::from_utf8_lossy(&first.stderr)
    );

    // Flip one byte mid-payload: the checksum must catch it.
    let mut bytes = std::fs::read(&ck).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20;
    std::fs::write(&ck, &bytes).unwrap();

    let strict = procmine(&[
        "mine",
        "--follow",
        log.to_str().unwrap(),
        "--checkpoint",
        ck.to_str().unwrap(),
    ]);
    assert!(!strict.status.success(), "corrupt checkpoint must refuse");
    let err = String::from_utf8_lossy(&strict.stderr);
    assert!(err.contains("checkpoint"), "{err}");
    assert!(err.contains("--recover"), "hint missing: {err}");

    // Under --recover the same corruption degrades to a cold start and
    // the session still mines the whole log.
    let recovered = procmine(&[
        "mine",
        "--follow",
        log.to_str().unwrap(),
        "--checkpoint",
        ck.to_str().unwrap(),
        "--recover",
    ]);
    assert!(
        recovered.status.success(),
        "{}",
        String::from_utf8_lossy(&recovered.stderr)
    );
    let err = String::from_utf8_lossy(&recovered.stderr);
    assert!(err.contains("cold-starting"), "{err}");
    let batch = procmine(&["mine", log.to_str().unwrap()]);
    assert_eq!(edge_lines(&batch.stdout), edge_lines(&recovered.stdout));
}

#[test]
fn follow_checkpoint_options_mismatch_is_refused() {
    let dir = tmpdir("follow-ckpt-mismatch");
    let log = dir.join("log.fm");
    let ck = dir.join("mine.ckpt");
    procmine(&[
        "generate",
        "--preset",
        "uwi",
        "--executions",
        "40",
        "--seed",
        "2",
        "-o",
        log.to_str().unwrap(),
    ]);
    let first = procmine(&[
        "mine",
        "--follow",
        log.to_str().unwrap(),
        "--checkpoint",
        ck.to_str().unwrap(),
    ]);
    assert!(first.status.success());

    // Same checkpoint, different mining options: always refused, even
    // though the file itself is intact.
    let out = procmine(&[
        "mine",
        "--follow",
        log.to_str().unwrap(),
        "--checkpoint",
        ck.to_str().unwrap(),
        "--threshold",
        "5",
    ]);
    assert!(!out.status.success(), "options mismatch must refuse");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("noise threshold"), "{err}");
}

#[test]
fn follow_checkpoint_flag_validation() {
    let dir = tmpdir("follow-ckpt-flags");
    let log = dir.join("log.fm");
    let ck = dir.join("mine.ckpt");
    procmine(&[
        "generate",
        "--preset",
        "uwi",
        "--executions",
        "10",
        "-o",
        log.to_str().unwrap(),
    ]);
    // --checkpoint-every without --checkpoint.
    let out = procmine(&[
        "mine",
        "--follow",
        log.to_str().unwrap(),
        "--checkpoint-every",
        "10",
    ]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--checkpoint"), "{err}");
    // --checkpoint needs a seekable file, not stdin.
    let out = procmine(&[
        "mine",
        "--follow",
        "-",
        "--checkpoint",
        ck.to_str().unwrap(),
    ]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("resumable"), "{err}");
    // --checkpoint is follow-only.
    let out = procmine(&[
        "mine",
        log.to_str().unwrap(),
        "--checkpoint",
        ck.to_str().unwrap(),
    ]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--follow"), "{err}");
}

// --- metrics export and `procmine report` -----------------------------

/// Generates a graph10 log at `path` with `executions` cases.
fn generate_log(path: &std::path::Path, executions: &str, seed: &str) {
    let out = procmine(&[
        "generate",
        "--preset",
        "graph10",
        "--executions",
        executions,
        "--seed",
        seed,
        "-o",
        path.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn mine_metrics_exports_prometheus_and_json() {
    let dir = tmpdir("metrics-mine");
    let log = dir.join("log.fm");
    generate_log(&log, "120", "3");

    // Prometheus exposition by extension.
    let prom = dir.join("metrics.prom");
    let out = procmine(&[
        "mine",
        log.to_str().unwrap(),
        "--metrics",
        prom.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&prom).unwrap();
    assert!(
        text.contains("# TYPE procmine_stage_latency_ns histogram"),
        "{text}"
    );
    assert!(text.contains("procmine_ingest_bytes_total"), "{text}");
    assert!(text.contains("le=\"+Inf\""), "{text}");

    // JSON snapshot otherwise.
    let json = dir.join("metrics.json");
    let out = procmine(&[
        "mine",
        log.to_str().unwrap(),
        "--metrics",
        json.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let text = std::fs::read_to_string(&json).unwrap();
    assert!(text.contains("procmine-metrics/v1"), "{text}");
    assert!(text.contains("procmine_stage_latency_ns"), "{text}");

    // Both validate, and both render through `report`.
    for path in [&prom, &json] {
        let out = procmine(&["report", path.to_str().unwrap(), "--validate"]);
        assert!(
            out.status.success(),
            "{}: {}",
            path.display(),
            String::from_utf8_lossy(&out.stderr)
        );
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(text.contains("valid"), "{text}");

        let out = procmine(&["report", path.to_str().unwrap()]);
        assert!(out.status.success());
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(text.contains("procmine_stage_latency_ns"), "{text}");
    }
}

#[test]
fn check_and_conditions_accept_metrics_flag() {
    let dir = tmpdir("metrics-check");
    let log = dir.join("log.fm");
    let model = dir.join("model.json");
    generate_log(&log, "100", "13");
    let out = procmine(&[
        "mine",
        log.to_str().unwrap(),
        "--json",
        model.to_str().unwrap(),
    ]);
    assert!(out.status.success());

    let metrics = dir.join("check.json");
    let out = procmine(&[
        "check",
        model.to_str().unwrap(),
        log.to_str().unwrap(),
        "--metrics",
        metrics.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&metrics).unwrap();
    assert!(text.contains("procmine_ingest_events_total"), "{text}");
    let out = procmine(&["report", metrics.to_str().unwrap(), "--validate"]);
    assert!(out.status.success());

    let metrics = dir.join("conditions.prom");
    let out = procmine(&[
        "conditions",
        log.to_str().unwrap(),
        "--metrics",
        metrics.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = procmine(&["report", metrics.to_str().unwrap(), "--validate"]);
    assert!(out.status.success());
}

#[test]
fn report_validate_catches_monotonicity_violations() {
    let dir = tmpdir("metrics-monotone");
    let small = dir.join("small.fm");
    let large = dir.join("large.fm");
    generate_log(&small, "40", "5");
    // The large log is a superset: the small log plus more cases from
    // the same seed would need generator support, so instead scrape the
    // same log twice — equal counters are monotone — and a strictly
    // smaller run for the violation direction.
    generate_log(&large, "200", "5");

    let first = dir.join("first.prom");
    let second = dir.join("second.prom");
    let out = procmine(&[
        "mine",
        large.to_str().unwrap(),
        "--metrics",
        first.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let out = procmine(&[
        "mine",
        large.to_str().unwrap(),
        "--metrics",
        second.to_str().unwrap(),
    ]);
    assert!(out.status.success());

    // Same workload re-run: counters equal, monotone both ways.
    let out = procmine(&[
        "report",
        second.to_str().unwrap(),
        "--prev",
        first.to_str().unwrap(),
        "--validate",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // A smaller workload after a larger one: ingest counters went
    // backwards, and the checker says so.
    let shrunk = dir.join("shrunk.prom");
    let out = procmine(&[
        "mine",
        small.to_str().unwrap(),
        "--metrics",
        shrunk.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let out = procmine(&[
        "report",
        shrunk.to_str().unwrap(),
        "--prev",
        first.to_str().unwrap(),
        "--validate",
    ]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("went backwards"), "{err}");
}

#[test]
fn report_rejects_malformed_exposition_and_snapshot() {
    let dir = tmpdir("metrics-reject");
    let bad_prom = dir.join("bad.prom");
    std::fs::write(&bad_prom, "procmine_x_total 4\n").unwrap();
    let out = procmine(&["report", bad_prom.to_str().unwrap(), "--validate"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("no TYPE"), "{err}");

    let bad_json = dir.join("bad.json");
    std::fs::write(&bad_json, "{\"schema\": \"other/v9\", \"metrics\": []}").unwrap();
    let out = procmine(&["report", bad_json.to_str().unwrap(), "--validate"]);
    assert!(!out.status.success());
}

#[test]
fn mine_stats_reports_dropped_spans_with_trace() {
    let dir = tmpdir("metrics-dropped");
    let log = dir.join("log.fm");
    let trace = dir.join("trace.json");
    let stats = dir.join("stats.json");
    generate_log(&log, "80", "17");
    let out = procmine(&[
        "mine",
        log.to_str().unwrap(),
        "--trace",
        trace.to_str().unwrap(),
        "--stats",
        "--stats-json",
        stats.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // Nothing was dropped on this small run, so `--stats` stays silent
    // about spans (the line only appears when the ring buffer wrapped),
    // while `--stats-json` always carries the count — here zero.
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(!text.contains("dropped at capacity"), "{text}");
    let json = std::fs::read_to_string(&stats).unwrap();
    assert!(json.contains("\"trace\":{\"dropped_spans\":0}"), "{json}");
}

#[test]
fn report_joins_trace_file() {
    let dir = tmpdir("metrics-trace-join");
    let log = dir.join("log.fm");
    let trace = dir.join("trace.json");
    let metrics = dir.join("metrics.json");
    generate_log(&log, "80", "19");
    let out = procmine(&[
        "mine",
        log.to_str().unwrap(),
        "--trace",
        trace.to_str().unwrap(),
        "--metrics",
        metrics.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = procmine(&[
        "report",
        metrics.to_str().unwrap(),
        "--trace",
        trace.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("trace spans"), "{text}");
    assert!(text.contains("span(s)"), "{text}");
}

// --- mine --follow --metrics-every ------------------------------------

#[test]
fn follow_stdin_accepts_metrics_every() {
    use std::io::Write;
    use std::process::Stdio;
    let dir = tmpdir("follow-metrics-stdin");
    let log = dir.join("log.fm");
    let metrics = dir.join("follow.prom");
    generate_log(&log, "120", "23");
    let text = std::fs::read(&log).unwrap();

    let mut child = Command::new(env!("CARGO_BIN_EXE_procmine"))
        .args([
            "mine",
            "--follow",
            "-",
            "--metrics",
            metrics.to_str().unwrap(),
            "--metrics-every",
            "50",
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child.stdin.take().unwrap().write_all(&text).unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // The follow pipeline mined the same model as batch mode…
    let batch = procmine(&["mine", log.to_str().unwrap()]);
    assert_eq!(edge_lines(&batch.stdout), edge_lines(&out.stdout));

    // …and the export carries the follow-health families and survives
    // the validator.
    let text = std::fs::read_to_string(&metrics).unwrap();
    assert!(text.contains("procmine_follow_events_total"), "{text}");
    assert!(text.contains("procmine_follow_open_cases"), "{text}");
    let out = procmine(&["report", metrics.to_str().unwrap(), "--validate"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn follow_error_exit_leaves_valid_midstream_scrape() {
    // When the follow pipeline aborts (here: every case repeats
    // activities, so the flush finds no executions), the metrics file
    // on disk is whatever the last mid-stream cadence write left. That
    // scrape must be the raw exposition — not wrapped in a checkpoint
    // envelope — because Prometheus reads the file while we run.
    use std::io::Write;
    use std::process::Stdio;
    let dir = tmpdir("follow-metrics-error");
    let log = dir.join("log.fm");
    let metrics = dir.join("follow.prom");
    generate_log(&log, "60", "31");
    // Feeding the same log twice duplicates every case id, so each
    // case sees its activities repeat and is skipped as cyclic.
    let mut text = std::fs::read(&log).unwrap();
    let copy = text.clone();
    text.extend_from_slice(&copy);

    let mut child = Command::new(env!("CARGO_BIN_EXE_procmine"))
        .args([
            "mine",
            "--follow",
            "-",
            "--metrics",
            metrics.to_str().unwrap(),
            "--metrics-every",
            "25",
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child.stdin.take().unwrap().write_all(&text).unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(!out.status.success(), "duplicated-case follow should fail");

    let scrape = std::fs::read_to_string(&metrics).unwrap();
    assert!(
        scrape.starts_with("# HELP"),
        "mid-stream scrape is not raw exposition:\n{}",
        &scrape[..scrape.len().min(120)]
    );
    assert!(!scrape.contains("PMCKPT"), "checkpoint envelope leaked");
    let out = procmine(&["report", metrics.to_str().unwrap(), "--validate"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn follow_metrics_cadence_writes_midstream_scrapes() {
    let dir = tmpdir("follow-metrics-file");
    let log = dir.join("log.fm");
    let metrics = dir.join("follow.json");
    generate_log(&log, "150", "29");
    let out = procmine(&[
        "mine",
        "--follow",
        log.to_str().unwrap(),
        "--metrics",
        metrics.to_str().unwrap(),
        "--metrics-every",
        "100",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&metrics).unwrap();
    assert!(text.contains("procmine-metrics/v1"), "{text}");
    assert!(text.contains("procmine_checkpoint"), "{text}");
    let out = procmine(&["report", metrics.to_str().unwrap(), "--validate"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn metrics_flag_validation() {
    let dir = tmpdir("metrics-flags");
    let log = dir.join("log.fm");
    generate_log(&log, "20", "31");
    let path = log.to_str().unwrap();

    // --metrics-every needs --metrics.
    let out = procmine(&["mine", "--follow", path, "--metrics-every", "10"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--metrics"), "{err}");

    // --metrics-every is follow-only.
    let out = procmine(&["mine", path, "--metrics-every", "10"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--follow"), "{err}");

    // report needs a file argument.
    let out = procmine(&["report"]);
    assert!(!out.status.success());
}
