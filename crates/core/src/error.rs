//! Error type for the miners.

use std::fmt;

/// Errors produced by the mining algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MineError {
    /// The log contains no executions — nothing to mine.
    EmptyLog,
    /// An execution contained no activity instances. Unlike
    /// [`MineError::EmptyLog`] (a whole log with nothing in it), this
    /// names the specific execution that was empty, so callers feeding
    /// executions one at a time can report which one was rejected.
    EmptyExecution {
        /// The offending execution's name.
        execution: String,
    },
    /// Algorithm 1 requires every activity to appear in every execution;
    /// the named execution is missing at least one activity.
    SpecialPreconditionViolated {
        /// The offending execution's name.
        execution: String,
    },
    /// Algorithm 1 or 2 was given a log with repeated activities —
    /// evidence of cycles, which require [`crate::mine_cyclic`].
    RepeatsRequireCyclicMiner {
        /// The offending execution's name.
        execution: String,
    },
    /// The ordering graph still contained a long cycle where the
    /// algorithm requires a DAG. With interval (non-instantaneous) logs
    /// this can happen in Algorithm 1; the general miner handles it.
    UnexpectedCycle,
    /// A resource guard fired: the log exceeded a configured
    /// [`crate::Limits`] bound, or the mining run outlived its
    /// wall-clock deadline.
    LimitExceeded {
        /// Which limit fired.
        kind: crate::LimitKind,
        /// Human-readable specifics (the observed and configured values).
        details: String,
    },
}

impl fmt::Display for MineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MineError::EmptyLog => write!(f, "the log contains no executions"),
            MineError::EmptyExecution { execution } => {
                write!(f, "execution `{execution}` contains no activity instances")
            }
            MineError::SpecialPreconditionViolated { execution } => write!(
                f,
                "execution `{execution}` does not contain every activity; use mine_general_dag"
            ),
            MineError::RepeatsRequireCyclicMiner { execution } => write!(
                f,
                "execution `{execution}` repeats an activity; use mine_cyclic"
            ),
            MineError::UnexpectedCycle => write!(
                f,
                "the ordering graph contains a cycle the algorithm cannot resolve; use mine_general_dag or mine_cyclic"
            ),
            MineError::LimitExceeded { kind, details } => {
                write!(f, "resource limit exceeded ({kind}): {details}")
            }
        }
    }
}

impl std::error::Error for MineError {}
