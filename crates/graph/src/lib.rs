//! Directed-graph substrate for the `procmine` workspace.
//!
//! The process-mining algorithms of Agrawal, Gunopulos and Leymann (EDBT
//! 1998) are graph algorithms at heart: they build a directed graph of
//! observed orderings, strip two-cycles, collapse strongly connected
//! components, and take per-execution transitive reductions. This crate
//! provides exactly that toolbox, implemented from scratch:
//!
//! * [`DiGraph`] — a node-labelled directed graph with stable integer
//!   node ids, the public result type of the miners;
//! * [`AdjMatrix`] — a dense bit-matrix graph used in the miners' inner
//!   loops where edge tests and removals must be O(1);
//! * [`BitSet`] — the fixed-capacity bitset backing [`AdjMatrix`] and the
//!   descendant sets of the transitive-reduction algorithm;
//! * [`topo`] — Kahn topological sort and cycle detection;
//! * [`scc`] — Tarjan's strongly-connected-components algorithm and the
//!   condensation graph;
//! * [`reach`] — reachability, descendant sets and transitive closure;
//! * [`reduction`] — the paper's Appendix-A transitive-reduction
//!   algorithm (reverse topological order with descendant bitsets) plus a
//!   naive reference implementation used for testing and ablation;
//! * [`dot`] — Graphviz DOT export;
//! * [`diff`] — edge-set comparison (precision / recall / missing /
//!   spurious) used to score mined graphs against ground truth.
//!
//! # Example
//!
//! ```
//! use procmine_graph::{DiGraph, reduction};
//!
//! // Build A -> B -> C plus the redundant shortcut A -> C …
//! let mut g: DiGraph<&str> = DiGraph::new();
//! let a = g.add_node("A");
//! let b = g.add_node("B");
//! let c = g.add_node("C");
//! g.add_edge(a, b);
//! g.add_edge(b, c);
//! g.add_edge(a, c);
//!
//! // … and the transitive reduction removes the shortcut.
//! let tr = reduction::transitive_reduction_dag(&g).unwrap();
//! assert!(tr.has_edge(a, b) && tr.has_edge(b, c) && !tr.has_edge(a, c));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adjmatrix;
mod bitset;
mod digraph;
mod error;

pub mod arena;
pub mod budget;
pub mod diff;
pub mod dominators;
pub mod dot;
pub mod graphml;
pub mod induced;
pub mod paths;
pub mod reach;
pub mod reduction;
pub mod scc;
pub mod topo;
pub mod words;

pub use adjmatrix::AdjMatrix;
pub use arena::{Arena, ArenaStats};
pub use bitset::BitSet;
pub use budget::Budget;
pub use digraph::{DiGraph, EdgeIter, NodeId};
pub use error::GraphError;
