//! Validation and assembly of raw event streams into executions.
//!
//! Real logs (the paper's §6) contain noise: unmatched events, activities
//! reported out of order, clock oddities. This module turns a flat,
//! possibly interleaved stream of [`EventRecord`]s into per-execution
//! [`Execution`] values, either strictly (any structural problem is an
//! error) or leniently (problems are dropped and reported as
//! diagnostics, letting the noise-tolerant miner see the rest).

use crate::{ActivityInstance, ActivityTable, EventKind, EventRecord, Execution, LogError};
use std::collections::HashMap;

/// How [`assemble_executions_with`] treats structural problems.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AssemblyPolicy {
    /// Any unmatched START or END is an error.
    #[default]
    Strict,
    /// Unmatched events are skipped and reported as diagnostics.
    Lenient,
}

/// A non-fatal problem found while assembling a log leniently.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Diagnostic {
    /// An END with no open START (dropped).
    DanglingEnd {
        /// Execution name.
        execution: String,
        /// Activity name.
        activity: String,
        /// Event time.
        time: u64,
    },
    /// A START never closed (dropped).
    DanglingStart {
        /// Execution name.
        execution: String,
        /// Activity name.
        activity: String,
        /// Event time.
        time: u64,
    },
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Diagnostic::DanglingEnd {
                execution,
                activity,
                time,
            } => write!(
                f,
                "case `{execution}`: dropped END for `{activity}` at t={time} (no open START)"
            ),
            Diagnostic::DanglingStart {
                execution,
                activity,
                time,
            } => write!(
                f,
                "case `{execution}`: dropped START for `{activity}` at t={time} (never ended)"
            ),
        }
    }
}

/// Finds the index of the event record a lenient-assembly diagnostic
/// refers to (first match by kind, activity, and time), so streaming
/// callers can report the diagnostic with the record's byte offset and
/// line number.
pub fn locate_diagnostic(records: &[EventRecord], diag: &Diagnostic) -> Option<usize> {
    let (want_kind, activity, time) = match diag {
        Diagnostic::DanglingEnd { activity, time, .. } => (EventKind::End, activity, *time),
        Diagnostic::DanglingStart { activity, time, .. } => (EventKind::Start, activity, *time),
    };
    records
        .iter()
        .position(|r| r.kind == want_kind && r.activity == *activity && r.time == time)
}

/// Result of a lenient assembly: the usable executions plus diagnostics.
#[derive(Debug)]
pub struct AssemblyReport {
    /// Executions that could be assembled (empty ones are skipped).
    pub executions: Vec<Execution>,
    /// Problems encountered.
    pub diagnostics: Vec<Diagnostic>,
}

/// Strictly assembles `records` into executions, interning activity names
/// into `table`. Equivalent to
/// [`assemble_executions_with`]`(records, table, AssemblyPolicy::Strict)`.
pub fn assemble_executions(
    records: &[EventRecord],
    table: &mut ActivityTable,
) -> Result<Vec<Execution>, LogError> {
    let (execs, _) = assemble_impl(records, table, AssemblyPolicy::Strict)?;
    Ok(execs)
}

/// Assembles `records` into executions under the given policy.
///
/// Events are grouped by process name (executions keep the order of their
/// first event) and sorted by timestamp within each group (stable, so
/// equal timestamps keep log order — in particular a START logged before
/// an END at the same instant pairs correctly). An END closes the
/// earliest open START of the same activity.
pub fn assemble_executions_with(
    records: &[EventRecord],
    table: &mut ActivityTable,
    policy: AssemblyPolicy,
) -> Result<AssemblyReport, LogError> {
    let (executions, diagnostics) = assemble_impl(records, table, policy)?;
    Ok(AssemblyReport {
        executions,
        diagnostics,
    })
}

fn assemble_impl(
    records: &[EventRecord],
    table: &mut ActivityTable,
    policy: AssemblyPolicy,
) -> Result<(Vec<Execution>, Vec<Diagnostic>), LogError> {
    // Group by process name, preserving first-seen order.
    let mut order: Vec<&str> = Vec::new();
    let mut groups: HashMap<&str, Vec<&EventRecord>> = HashMap::new();
    for r in records {
        groups
            .entry(&r.process)
            .or_insert_with(|| {
                order.push(&r.process);
                Vec::new()
            })
            .push(r);
    }

    let mut diagnostics = Vec::new();
    let mut executions = Vec::new();
    for name in order {
        let Some(mut events) = groups.remove(name) else {
            continue; // unreachable: `order` mirrors `groups` keys
        };
        events.sort_by_key(|r| r.time); // stable: log order breaks ties

        // Open STARTs per activity, FIFO.
        let mut open: HashMap<&str, Vec<(u64, usize)>> = HashMap::new();
        let mut instances: Vec<ActivityInstance> = Vec::new();
        for r in &events {
            match r.kind {
                EventKind::Start => {
                    let idx = instances.len();
                    instances.push(ActivityInstance {
                        activity: table.intern(&r.activity),
                        start: r.time,
                        end: u64::MAX, // patched on END
                        output: None,
                    });
                    open.entry(&r.activity).or_default().push((r.time, idx));
                }
                EventKind::End => {
                    let slot = open.get_mut(r.activity.as_str()).and_then(|v| {
                        if v.is_empty() {
                            None
                        } else {
                            Some(v.remove(0))
                        }
                    });
                    match slot {
                        Some((_, idx)) => {
                            instances[idx].end = r.time;
                            instances[idx].output = r.output.clone();
                        }
                        None => match policy {
                            AssemblyPolicy::Strict => {
                                return Err(LogError::UnmatchedEnd {
                                    execution: name.to_string(),
                                    activity: r.activity.clone(),
                                    time: r.time,
                                })
                            }
                            AssemblyPolicy::Lenient => diagnostics.push(Diagnostic::DanglingEnd {
                                execution: name.to_string(),
                                activity: r.activity.clone(),
                                time: r.time,
                            }),
                        },
                    }
                }
            }
        }

        // Any still-open STARTs are unmatched.
        let mut dangling: Vec<usize> = Vec::new();
        for (activity, starts) in open {
            for (time, idx) in starts {
                match policy {
                    AssemblyPolicy::Strict => {
                        return Err(LogError::UnmatchedStart {
                            execution: name.to_string(),
                            activity: activity.to_string(),
                            time,
                        })
                    }
                    AssemblyPolicy::Lenient => {
                        diagnostics.push(Diagnostic::DanglingStart {
                            execution: name.to_string(),
                            activity: activity.to_string(),
                            time,
                        });
                        dangling.push(idx);
                    }
                }
            }
        }
        dangling.sort_unstable_by(|a, b| b.cmp(a));
        for idx in dangling {
            instances.remove(idx);
        }

        if instances.is_empty() {
            // A lenient pass may have dropped everything; skip the case.
            continue;
        }
        executions.push(Execution::new(name, instances)?);
    }
    Ok((executions, diagnostics))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_rejects_dangling_end() {
        let records = vec![EventRecord::end("p", "A", 3, None)];
        let mut t = ActivityTable::new();
        assert!(matches!(
            assemble_executions(&records, &mut t),
            Err(LogError::UnmatchedEnd { .. })
        ));
    }

    #[test]
    fn strict_rejects_dangling_start() {
        let records = vec![
            EventRecord::start("p", "A", 0),
            EventRecord::end("p", "A", 1, None),
            EventRecord::start("p", "B", 2),
        ];
        let mut t = ActivityTable::new();
        assert!(matches!(
            assemble_executions(&records, &mut t),
            Err(LogError::UnmatchedStart { .. })
        ));
    }

    #[test]
    fn lenient_drops_and_reports() {
        let records = vec![
            EventRecord::end("p", "Z", 0, None), // dangling END
            EventRecord::start("p", "A", 1),
            EventRecord::end("p", "A", 2, None),
            EventRecord::start("p", "B", 3), // dangling START
        ];
        let mut t = ActivityTable::new();
        let report = assemble_executions_with(&records, &mut t, AssemblyPolicy::Lenient).unwrap();
        assert_eq!(report.executions.len(), 1);
        assert_eq!(report.executions[0].len(), 1);
        assert_eq!(report.diagnostics.len(), 2);
    }

    #[test]
    fn events_sorted_by_time_within_execution() {
        // Out-of-order delivery: B's events logged before A's, but A ran first.
        let records = vec![
            EventRecord::start("p", "B", 10),
            EventRecord::end("p", "B", 11, None),
            EventRecord::start("p", "A", 0),
            EventRecord::end("p", "A", 1, None),
        ];
        let mut t = ActivityTable::new();
        let execs = assemble_executions(&records, &mut t).unwrap();
        assert_eq!(execs[0].display(&t), "A B");
    }

    #[test]
    fn concurrent_instances_of_same_activity_pair_fifo() {
        // Two overlapping instances of A: starts at 0 and 2, ends at 3 and 5.
        // FIFO pairing gives [0,3] and [2,5].
        let records = vec![
            EventRecord::start("p", "A", 0),
            EventRecord::start("p", "A", 2),
            EventRecord::end("p", "A", 3, Some(vec![1])),
            EventRecord::end("p", "A", 5, Some(vec![2])),
        ];
        let mut t = ActivityTable::new();
        let execs = assemble_executions(&records, &mut t).unwrap();
        let inst = execs[0].instances();
        assert_eq!((inst[0].start, inst[0].end), (0, 3));
        assert_eq!(inst[0].output.as_deref(), Some(&[1i64][..]));
        assert_eq!((inst[1].start, inst[1].end), (2, 5));
    }

    #[test]
    fn lenient_skips_fully_dropped_execution() {
        let records = vec![
            EventRecord::end("ghost", "A", 0, None),
            EventRecord::start("real", "A", 0),
            EventRecord::end("real", "A", 1, None),
        ];
        let mut t = ActivityTable::new();
        let report = assemble_executions_with(&records, &mut t, AssemblyPolicy::Lenient).unwrap();
        assert_eq!(report.executions.len(), 1);
        assert_eq!(report.executions[0].id, "real");
    }
}
