//! Training-set construction (§7).
//!
//! "Formally the training set for `f_(u,v)` is defined as follows. For
//! each execution of the process that `u` and `v` appear, the point
//! `(o(u), 1)` is inserted. For each execution of the process that `u`
//! but not `v` appears, the point `(o(u), 0)` is inserted."

use procmine_log::{ActivityId, WorkflowLog};
use std::fmt;

/// Errors constructing datasets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetError {
    /// The rows are empty.
    Empty,
    /// Feature vectors have inconsistent lengths.
    RaggedFeatures {
        /// Length of the first row.
        expected: usize,
        /// Index of the offending row.
        row: usize,
        /// Its length.
        got: usize,
    },
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::Empty => write!(f, "dataset has no rows"),
            DatasetError::RaggedFeatures { expected, row, got } => {
                write!(f, "row {row} has {got} features, expected {expected}")
            }
        }
    }
}

impl std::error::Error for DatasetError {}

/// A labelled dataset: integer feature vectors with Boolean labels.
#[derive(Debug, Clone)]
pub struct Dataset {
    features: Vec<Vec<i64>>,
    labels: Vec<bool>,
    dim: usize,
}

impl Dataset {
    /// Builds a dataset from `(features, label)` rows. All rows must
    /// have the same dimension.
    pub fn from_rows(rows: Vec<(Vec<i64>, bool)>) -> Result<Self, DatasetError> {
        if rows.is_empty() {
            return Err(DatasetError::Empty);
        }
        let dim = rows[0].0.len();
        for (i, (x, _)) in rows.iter().enumerate() {
            if x.len() != dim {
                return Err(DatasetError::RaggedFeatures {
                    expected: dim,
                    row: i,
                    got: x.len(),
                });
            }
        }
        let (features, labels) = rows.into_iter().unzip();
        Ok(Dataset {
            features,
            labels,
            dim,
        })
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// `true` if there are no rows (never for constructed datasets).
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Row accessor.
    pub fn row(&self, i: usize) -> (&[i64], bool) {
        (&self.features[i], self.labels[i])
    }

    /// Count of positive labels.
    pub fn positives(&self) -> usize {
        self.labels.iter().filter(|&&l| l).count()
    }

    /// Iterates `(features, label)`.
    pub fn iter(&self) -> impl Iterator<Item = (&[i64], bool)> {
        self.features
            .iter()
            .map(Vec::as_slice)
            .zip(self.labels.iter().copied())
    }
}

/// Builds the §7 training set for the edge `(u, v)` from a log.
///
/// Executions where `u` did not run contribute nothing; executions where
/// `u` ran but recorded no output contribute the null (all-zero) vector
/// padded to the dataset's dimension, which is taken from the widest
/// output observed for `u`. Returns `None` if `u` never appears with or
/// without output, or if the log gives only one class no dimension at
/// all (no output ever recorded and so nothing to learn from).
pub fn edge_training_set(log: &WorkflowLog, u: ActivityId, v: ActivityId) -> Option<Dataset> {
    // Find the widest output of u (outputs may be absent on some runs).
    let dim = log
        .executions()
        .iter()
        .filter_map(|e| e.output_of(u).map(<[i64]>::len))
        .max()?;
    if dim == 0 {
        return None;
    }
    let mut rows = Vec::new();
    for exec in log.executions() {
        if !exec.contains(u) {
            continue;
        }
        let mut x = exec.output_of(u).map(<[i64]>::to_vec).unwrap_or_default();
        x.resize(dim, 0);
        rows.push((x, exec.contains(v)));
    }
    Dataset::from_rows(rows).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use procmine_log::{ActivityInstance, Execution, WorkflowLog};

    fn log_with_outputs() -> WorkflowLog {
        // Three executions of A(o)→{B | C}: A's output decides.
        let mut log = WorkflowLog::new();
        let mut table = procmine_log::ActivityTable::new();
        let a = table.intern("A");
        let b = table.intern("B");
        let c = table.intern("C");
        let mut log2 = WorkflowLog::with_activities(table);
        for (i, (out, took_b)) in [(vec![10i64], true), (vec![3], false), (vec![8], true)]
            .into_iter()
            .enumerate()
        {
            let next = if took_b { b } else { c };
            let exec = Execution::new(
                format!("e{i}"),
                vec![
                    ActivityInstance {
                        activity: a,
                        start: 0,
                        end: 1,
                        output: Some(out),
                    },
                    ActivityInstance {
                        activity: next,
                        start: 2,
                        end: 3,
                        output: None,
                    },
                ],
            )
            .unwrap();
            log2.push(exec);
        }
        std::mem::swap(&mut log, &mut log2);
        log
    }

    #[test]
    fn builds_edge_training_set() {
        let log = log_with_outputs();
        let a = log.activities().id("A").unwrap();
        let b = log.activities().id("B").unwrap();
        let ds = edge_training_set(&log, a, b).unwrap();
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.dim(), 1);
        assert_eq!(ds.positives(), 2);
        let rows: Vec<_> = ds.iter().collect();
        assert_eq!(rows[0], (&[10i64][..], true));
        assert_eq!(rows[1], (&[3i64][..], false));
    }

    #[test]
    fn no_outputs_means_no_dataset() {
        let log = WorkflowLog::from_strings(["ABC", "AC"]).unwrap();
        let a = log.activities().id("A").unwrap();
        let b = log.activities().id("B").unwrap();
        assert!(edge_training_set(&log, a, b).is_none());
    }

    #[test]
    fn rejects_ragged_rows() {
        let err = Dataset::from_rows(vec![(vec![1, 2], true), (vec![1], false)]).unwrap_err();
        assert!(matches!(
            err,
            DatasetError::RaggedFeatures {
                expected: 2,
                row: 1,
                got: 1
            }
        ));
        assert_eq!(Dataset::from_rows(vec![]).unwrap_err(), DatasetError::Empty);
    }
}
