//! Random process-graph generation for the synthetic experiments.
//!
//! §8.1: "To generate a synthetic dataset, we start with a random
//! directed acyclic graph, and using this as a process model graph, log
//! a set of process executions." Nodes are laid out in a fixed
//! topological order (node 0 = START, node n−1 = END); each forward pair
//! becomes an edge with probability `edge_prob`, and fix-up passes
//! guarantee a single source and a single sink. The edge densities of
//! the paper's Table 2 graphs correspond to `edge_prob` of roughly 0.53
//! (10 vertices, 24 edges) up to 0.92 (100 vertices, 4569 edges).

use crate::{ModelError, ProcessModel};
use rand::Rng;

/// Configuration for [`random_dag`].
#[derive(Debug, Clone)]
pub struct RandomDagConfig {
    /// Number of vertices including START and END. Must be ≥ 2.
    pub vertices: usize,
    /// Probability of including each forward edge `i → j`, `i < j`.
    pub edge_prob: f64,
}

impl RandomDagConfig {
    /// An `edge_prob` that targets approximately `edges` edges for
    /// `vertices` nodes (`edges / C(n, 2)`), matching the densities the
    /// paper reports in Table 2.
    pub fn with_target_edges(vertices: usize, edges: usize) -> Self {
        let pairs = vertices * (vertices - 1) / 2;
        RandomDagConfig {
            vertices,
            edge_prob: (edges as f64 / pairs as f64).min(1.0),
        }
    }
}

/// Spreadsheet-style activity names: `A`, `B`, …, `Z`, `AA`, `AB`, …
/// deterministic in the node index so mined and reference graphs align.
pub fn activity_name(mut i: usize) -> String {
    let mut name = String::new();
    loop {
        name.insert(0, (b'A' + (i % 26) as u8) as char);
        i /= 26;
        if i == 0 {
            break;
        }
        i -= 1;
    }
    name
}

/// Generates a random single-source/single-sink DAG process model.
///
/// Node 0 (named `A`) is the initiating activity and node n−1 the
/// terminating one. After sampling forward edges with `edge_prob`, every
/// interior node missing an incoming (resp. outgoing) edge gets one from
/// a random earlier (resp. to a random later) node, and interior nodes
/// are forbidden from becoming extra sources/sinks.
pub fn random_dag<R: Rng + ?Sized>(
    cfg: &RandomDagConfig,
    rng: &mut R,
) -> Result<ProcessModel, ModelError> {
    assert!(cfg.vertices >= 2, "need at least START and END");
    assert!(
        (0.0..=1.0).contains(&cfg.edge_prob),
        "edge_prob must be a probability"
    );
    let n = cfg.vertices;
    let mut has_edge = vec![false; n * n];
    let mut in_deg = vec![0usize; n];
    let mut out_deg = vec![0usize; n];

    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen_bool(cfg.edge_prob) {
                has_edge[i * n + j] = true;
                in_deg[j] += 1;
                out_deg[i] += 1;
            }
        }
    }
    // Fix-ups: every node except START needs an incoming edge; every
    // node except END needs an outgoing edge.
    for j in 1..n {
        if in_deg[j] == 0 {
            let i = rng.gen_range(0..j);
            has_edge[i * n + j] = true;
            in_deg[j] += 1;
            out_deg[i] += 1;
        }
    }
    for i in 0..n - 1 {
        if out_deg[i] == 0 {
            let j = rng.gen_range(i + 1..n);
            has_edge[i * n + j] = true;
            in_deg[j] += 1;
            out_deg[i] += 1;
        }
    }

    let mut builder = ProcessModel::builder(format!("random-dag-{n}"));
    for i in 0..n {
        builder = builder.activity(&activity_name(i));
    }
    for i in 0..n {
        for j in (i + 1)..n {
            if has_edge[i * n + j] {
                builder = builder.edge(&activity_name(i), &activity_name(j));
            }
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn names_are_spreadsheet_style() {
        assert_eq!(activity_name(0), "A");
        assert_eq!(activity_name(25), "Z");
        assert_eq!(activity_name(26), "AA");
        assert_eq!(activity_name(27), "AB");
        assert_eq!(activity_name(51), "AZ");
        assert_eq!(activity_name(52), "BA");
        assert_eq!(activity_name(701), "ZZ");
        assert_eq!(activity_name(702), "AAA");
    }

    #[test]
    fn generates_valid_models_at_all_sizes() {
        let mut rng = StdRng::seed_from_u64(1);
        for &(n, p) in &[(2, 0.0), (5, 0.3), (10, 0.53), (25, 0.75), (50, 0.86)] {
            let cfg = RandomDagConfig {
                vertices: n,
                edge_prob: p,
            };
            let model = random_dag(&cfg, &mut rng).unwrap();
            assert_eq!(model.activity_count(), n);
            assert!(model.is_acyclic());
            assert_eq!(model.activities().name(model.start()), "A");
            assert_eq!(model.activities().name(model.end()), activity_name(n - 1));
        }
    }

    #[test]
    fn target_edges_config_lands_near_target() {
        let mut rng = StdRng::seed_from_u64(42);
        let cfg = RandomDagConfig::with_target_edges(25, 224);
        let mut total = 0usize;
        const RUNS: usize = 20;
        for _ in 0..RUNS {
            total += random_dag(&cfg, &mut rng).unwrap().edge_count();
        }
        let avg = total as f64 / RUNS as f64;
        assert!(
            (avg - 224.0).abs() < 30.0,
            "average edge count {avg} should approximate 224"
        );
    }

    #[test]
    fn zero_prob_still_connected() {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = RandomDagConfig {
            vertices: 8,
            edge_prob: 0.0,
        };
        let model = random_dag(&cfg, &mut rng).unwrap();
        // Fix-ups alone must produce a valid single-source/sink DAG.
        assert!(model.edge_count() >= 7);
    }

    #[test]
    fn full_prob_is_complete_dag() {
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = RandomDagConfig {
            vertices: 6,
            edge_prob: 1.0,
        };
        let model = random_dag(&cfg, &mut rng).unwrap();
        assert_eq!(model.edge_count(), 6 * 5 / 2);
    }
}
