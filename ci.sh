#!/usr/bin/env bash
# Local CI gate: formatting, lints, then the tier-1 build + test pass.
# Run from the repo root. Fails fast on the first broken step.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

# The ingestion, mining, and graph libraries are panic-audited:
# unwrap/expect are denied, with `#[allow]` + a justification comment
# at the few provably infallible sites. Lib targets only — tests and
# benches may unwrap freely.
echo "==> panic audit: clippy -D clippy::unwrap_used -D clippy::expect_used (log, core, graph)"
cargo clippy -p procmine-log -p procmine-core -p procmine-graph --lib --no-deps -- \
  -D warnings -D clippy::unwrap_used -D clippy::expect_used

# The `*_instrumented` twin API is gone (its one-release grace period
# ended with the compat modules' removal) and must not regrow. The CLI
# must likewise build its telemetry through `MineSession` rather than
# wiring sinks and tracers by hand.
echo "==> deprecation lane: no *_instrumented identifiers anywhere"
bad_shims=$(grep -rn --include='*.rs' '_instrumented' crates src tests || true)
if [ -n "$bad_shims" ]; then
  echo "*_instrumented identifiers reappeared (the twin API is retired):" >&2
  echo "$bad_shims" >&2
  exit 1
fi
cli_raw_telemetry=$(grep -rn --include='*.rs' -E 'NullSink|Tracer::disabled\(\)' crates/cli/src || true)
if [ -n "$cli_raw_telemetry" ]; then
  echo "CLI constructs sinks/tracers directly instead of using MineSession:" >&2
  echo "$cli_raw_telemetry" >&2
  exit 1
fi

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> corruption smoke subset"
cargo test -q --test corruption smoke_

# Streaming smoke: pipe a generated log through `mine --follow -` and
# require the exact edge set of the batch miner, plus an ingest section
# in the stats report. Guards the online pipeline end to end (source →
# assembler → online miner → CLI surface).
echo "==> streaming smoke: mine --follow parity with batch"
cargo build --release -q -p procmine-cli
smoke_dir=$(mktemp -d)
trap 'rm -rf "$smoke_dir"' EXIT
./target/release/procmine generate --preset graph10 --executions 150 --seed 11 \
  -o "$smoke_dir/follow.fm" >/dev/null
./target/release/procmine mine "$smoke_dir/follow.fm" \
  | grep -E '^  .* -> ' | sort > "$smoke_dir/batch.edges"
./target/release/procmine mine --follow - --stats-json "$smoke_dir/follow-stats.json" \
  < "$smoke_dir/follow.fm" \
  | grep -E '^  .* -> ' | sort > "$smoke_dir/follow.edges"
if ! diff -u "$smoke_dir/batch.edges" "$smoke_dir/follow.edges"; then
  echo "mine --follow diverged from batch mining on the smoke log" >&2
  exit 1
fi
grep -q '"cases_evicted"' "$smoke_dir/follow-stats.json" || {
  echo "follow stats-json is missing the ingest section" >&2
  exit 1
}

# Crash-recovery smoke: SIGKILL a checkpointing `mine --follow` mid
# stream, let the log keep growing, resume from the checkpoint, and
# require the exact edge set of batch-mining the whole log. Guards the
# checkpoint/resume path end to end (atomic save → kill → load →
# validate → seek → continue).
echo "==> crash-recovery smoke: SIGKILL mid-follow, resume, diff vs batch"
./target/release/procmine generate --preset graph10 --executions 300 --seed 17 \
  -o "$smoke_dir/crash.fm" >/dev/null
# Split at a case boundary so the torn tail is growth, not corruption.
half=$(( $(wc -l < "$smoke_dir/crash.fm") / 2 ))
head -n "$half" "$smoke_dir/crash.fm" > "$smoke_dir/crash-live.fm"
first_case=$(head -n 1 "$smoke_dir/crash.fm" | cut -d, -f1)
./target/release/procmine mine --follow "$smoke_dir/crash-live.fm" \
  --idle-ms 30000 --poll-ms 20 \
  --checkpoint "$smoke_dir/crash.ckpt" --checkpoint-every 40 \
  >/dev/null 2>"$smoke_dir/crash.follow.err" &
follow_pid=$!
# Wait for the first checkpoint to land, then kill without warning.
for _ in $(seq 1 100); do
  [ -f "$smoke_dir/crash.ckpt" ] && break
  sleep 0.1
done
if ! [ -f "$smoke_dir/crash.ckpt" ]; then
  echo "follow session never wrote a checkpoint" >&2
  cat "$smoke_dir/crash.follow.err" >&2
  kill -9 "$follow_pid" 2>/dev/null || true
  exit 1
fi
kill -9 "$follow_pid" 2>/dev/null || true
wait "$follow_pid" 2>/dev/null || true
# The log keeps growing while the miner is down.
tail -n +"$(( half + 1 ))" "$smoke_dir/crash.fm" >> "$smoke_dir/crash-live.fm"
./target/release/procmine mine --follow "$smoke_dir/crash-live.fm" \
  --checkpoint "$smoke_dir/crash.ckpt" --checkpoint-every 40 \
  2>"$smoke_dir/crash.resume.err" \
  | grep -E '^  .* -> ' | sort > "$smoke_dir/crash-resumed.edges"
grep -q 'resuming from checkpoint @ byte' "$smoke_dir/crash.resume.err" || {
  echo "resumed session did not report the checkpoint resume:" >&2
  cat "$smoke_dir/crash.resume.err" >&2
  exit 1
}
./target/release/procmine mine "$smoke_dir/crash.fm" \
  | grep -E '^  .* -> ' | sort > "$smoke_dir/crash-batch.edges"
if ! diff -u "$smoke_dir/crash-batch.edges" "$smoke_dir/crash-resumed.edges"; then
  echo "resumed mine --follow diverged from batch mining after SIGKILL" >&2
  exit 1
fi

# Perf-regression smoke: run the fixed scenario matrix once in smoke
# mode, validate the report against the perfsuite schema, and let the
# binary's built-in disabled-tracer overhead guard gate the run. The
# report lands in target/ci-artifacts/ for the workflow to upload.
echo "==> perfsuite smoke + schema validation"
mkdir -p target/ci-artifacts
cargo run --release -q -p procmine-bench --bin perfsuite -- \
  --smoke --out target/ci-artifacts/BENCH_perfsuite_smoke.json
cargo run --release -q -p procmine-bench --bin perfsuite -- \
  --check-schema target/ci-artifacts/BENCH_perfsuite_smoke.json

# Codec fast-path gate: on the committed baseline, decoding XES may
# cost at most 2x decoding JSONL. Checked against the repo's
# BENCH_perfsuite.json (not a fresh run) so the gate is deterministic.
echo "==> codec fast-path gate: codec.xes within 2x of codec.jsonl"
cargo run --release -q -p procmine-bench --bin perfsuite -- \
  --assert-xes-ratio BENCH_perfsuite.json

# Checkpoint overhead gate: on the committed baseline, the cadenced
# atomic checkpoint saves may cost the follow pipeline at most 10%
# over plain streaming (stream.checkpoint vs stream.mine, per pass).
echo "==> checkpoint overhead gate: stream.checkpoint within 1.1x of stream.mine"
cargo run --release -q -p procmine-bench --bin perfsuite -- \
  --assert-checkpoint-ratio BENCH_perfsuite.json

# Columnar data-layer gate: on the committed baseline, the columnar
# mine.general path must sit at or below parity with the retained
# nested-Vec reference implementation (mine.columnar_ratio <= 1000
# milli-units) — the layout refactor may never cost throughput.
echo "==> columnar layout gate: mine.general within 1.0x of mine.legacy"
cargo run --release -q -p procmine-bench --bin perfsuite -- \
  --assert-columnar-ratio BENCH_perfsuite.json

# Metrics lane: run the follow pipeline with cadenced --metrics-every
# exports over a case-boundary prefix of a log and then the full log
# (the second run reprocesses a superset from scratch, so every counter
# is deterministically >= the first scrape), then validate with the
# in-repo checker: exposition shape (HELP/TYPE per family, no duplicate
# series), counter monotonicity across the two scrapes, and the JSON
# snapshot against its schema.
echo "==> metrics lane: follow --metrics-every + exposition/schema validation"
./target/release/procmine generate --preset graph10 --executions 200 --seed 23 \
  -o "$smoke_dir/metrics.fm" >/dev/null
total=$(wc -l < "$smoke_dir/metrics.fm")
half=$(( total / 2 ))
# Cut at the next case boundary so the prefix holds only whole cases.
cut_line=$(awk -F, -v h="$half" 'NR<=h {prev=$1; next} $1!=prev {print NR-1; exit}' \
  "$smoke_dir/metrics.fm")
head -n "${cut_line:-$total}" "$smoke_dir/metrics.fm" > "$smoke_dir/metrics-prefix.fm"
./target/release/procmine mine --follow "$smoke_dir/metrics-prefix.fm" \
  --metrics "$smoke_dir/scrape1.prom" --metrics-every 50 >/dev/null
./target/release/procmine mine --follow "$smoke_dir/metrics.fm" \
  --metrics "$smoke_dir/scrape2.prom" --metrics-every 50 >/dev/null
./target/release/procmine report "$smoke_dir/scrape1.prom" --validate
./target/release/procmine report "$smoke_dir/scrape2.prom" \
  --prev "$smoke_dir/scrape1.prom" --validate
./target/release/procmine mine --follow "$smoke_dir/metrics.fm" \
  --metrics "$smoke_dir/metrics-snapshot.json" --metrics-every 50 >/dev/null
./target/release/procmine report "$smoke_dir/metrics-snapshot.json" --validate

echo "ci: OK"
