//! Strongly connected components (Tarjan) and the condensation graph.
//!
//! Step 4 of Algorithm 2 removes all edges between vertices in the same
//! strongly connected component of the followings graph: a cycle of
//! followings means the activities on it are mutually independent.

use crate::budget::Budget;
use crate::{DiGraph, GraphError, NodeId};

/// The strongly-connected-component decomposition of a graph.
#[derive(Debug, Clone)]
pub struct SccDecomposition {
    /// `component[v]` is the component index of node `v`.
    component: Vec<usize>,
    /// The members of each component. Components are numbered in reverse
    /// topological order of the condensation (a Tarjan property): if
    /// there is an edge from component `a` to component `b` (a ≠ b),
    /// then `a > b`.
    members: Vec<Vec<NodeId>>,
}

impl SccDecomposition {
    /// Number of components.
    pub fn count(&self) -> usize {
        self.members.len()
    }

    /// Component index of a node.
    pub fn component_of(&self, v: NodeId) -> usize {
        self.component[v.index()]
    }

    /// Members of component `c`, in increasing node-id order.
    pub fn members(&self, c: usize) -> &[NodeId] {
        &self.members[c]
    }

    /// Iterates all components as member slices.
    pub fn iter(&self) -> impl Iterator<Item = &[NodeId]> {
        self.members.iter().map(Vec::as_slice)
    }

    /// `true` if `u` and `v` are in the same component.
    pub fn same_component(&self, u: NodeId, v: NodeId) -> bool {
        self.component[u.index()] == self.component[v.index()]
    }

    /// Components with more than one member (the "cycles of followings"
    /// that Algorithm 2 dissolves). A single node with a self-loop is not
    /// reported here; the miners remove self-loops in the two-cycle step.
    pub fn nontrivial(&self) -> impl Iterator<Item = &[NodeId]> {
        self.members
            .iter()
            .filter(|m| m.len() > 1)
            .map(Vec::as_slice)
    }
}

/// Computes the strongly connected components of `g` with an iterative
/// Tarjan algorithm (explicit stack — no recursion, so deep graphs cannot
/// overflow the call stack).
pub fn tarjan_scc<N>(g: &DiGraph<N>) -> SccDecomposition {
    match tarjan_impl::<N, std::convert::Infallible>(g, 0..g.node_count(), || Ok(())) {
        Ok(sccs) => sccs,
        Err(never) => match never {},
    }
}

/// [`tarjan_scc`] under a wall-clock [`Budget`]: the budget is
/// re-checked every 1024 work-stack steps, so even one huge component
/// cannot overstay its deadline by much. Returns
/// [`GraphError::BudgetExhausted`] when it fires.
pub fn tarjan_scc_budgeted<N>(
    g: &DiGraph<N>,
    budget: &Budget,
) -> Result<SccDecomposition, GraphError> {
    let mut ticks = 0u32;
    tarjan_impl(g, 0..g.node_count(), move || {
        ticks = ticks.wrapping_add(1);
        if ticks & 0x3FF == 0 {
            budget.check()
        } else {
            Ok(())
        }
    })
}

/// [`tarjan_scc_budgeted`] fanned out over `threads` scoped threads.
///
/// The graph is first split into weakly connected components (a cheap
/// union-find over the edge list); Tarjan then runs per weak component,
/// with the components packed onto threads largest-first. Strong
/// components never span weak ones, so the merged decomposition has
/// exactly the serial algorithm's components and membership — only the
/// component *numbering* may differ, and the numbering stays
/// reverse-topological within each weak component (the property the
/// miners rely on is [`SccDecomposition::same_component`], which is
/// numbering-independent).
///
/// The fan-out pays off on graphs with many weak components — e.g. the
/// instance-labeled vertex graphs of the cyclic miner, or followings
/// graphs of logs with disconnected sub-processes. A graph that is one
/// weak component (or `threads <= 1`) falls back to the serial budgeted
/// run. Each worker checks `budget` on the serial cadence; the first
/// error wins. Deterministic for any thread count.
pub fn tarjan_scc_parallel_budgeted<N: Sync>(
    g: &DiGraph<N>,
    threads: usize,
    budget: &Budget,
) -> Result<SccDecomposition, GraphError> {
    let n = g.node_count();
    // Bail before paying for the union-find partition when there is
    // nothing to fan out over.
    if threads <= 1 {
        return tarjan_scc_budgeted(g, budget);
    }
    let wccs = weak_components(g);
    if wccs.len() <= 1 {
        return tarjan_scc_budgeted(g, budget);
    }
    budget.check()?;

    // Pack weak components onto min(threads, #wcc) buckets, largest
    // first onto the least-loaded bucket (LPT). Ties break by position,
    // so the packing — and hence the merged numbering — is
    // deterministic.
    let buckets = packed_buckets(&wccs, threads.min(wccs.len()));

    let wccs = &wccs;
    let parts: Vec<Result<SccDecomposition, GraphError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = buckets
            .iter()
            .map(|bucket| {
                scope.spawn(move || {
                    let roots = bucket
                        .iter()
                        .flat_map(|&c| wccs[c].iter().copied())
                        .collect::<Vec<usize>>();
                    let mut ticks = 0u32;
                    tarjan_impl(g, roots, move || {
                        ticks = ticks.wrapping_add(1);
                        if ticks & 0x3FF == 0 {
                            budget.check()
                        } else {
                            Ok(())
                        }
                    })
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(result) => result,
                Err(panic) => std::panic::resume_unwind(panic),
            })
            .collect()
    });

    // Merge in bucket order: re-number each part's components after the
    // ones already merged. Unvisited slots of a part belong to other
    // buckets.
    let mut component = vec![usize::MAX; n];
    let mut members: Vec<Vec<NodeId>> = Vec::new();
    for part in parts {
        let part = part?;
        let offset = members.len();
        for (ci, comp) in part.members.into_iter().enumerate() {
            for &v in &comp {
                component[v.index()] = offset + ci;
            }
            members.push(comp);
        }
    }
    Ok(SccDecomposition { component, members })
}

/// Weakly connected components by union-find (path-halving) over the
/// edge list, returned as node lists in increasing first-node order.
fn weak_components<N>(g: &DiGraph<N>) -> Vec<Vec<usize>> {
    let n = g.node_count();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for (u, v) in g.edges() {
        let ru = find(&mut parent, u.index());
        let rv = find(&mut parent, v.index());
        if ru != rv {
            parent[ru.max(rv)] = ru.min(rv);
        }
    }
    let mut index_of_root = vec![usize::MAX; n];
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for v in 0..n {
        let r = find(&mut parent, v);
        if index_of_root[r] == usize::MAX {
            index_of_root[r] = groups.len();
            groups.push(Vec::new());
        }
        groups[index_of_root[r]].push(v);
    }
    groups
}

/// Longest-processing-time packing of the weak components onto
/// `buckets` buckets: components sorted by size (descending, position
/// tie-break) each go to the currently least-loaded bucket.
fn packed_buckets(wccs: &[Vec<usize>], buckets: usize) -> Vec<Vec<usize>> {
    let mut order: Vec<usize> = (0..wccs.len()).collect();
    order.sort_by_key(|&c| std::cmp::Reverse(wccs[c].len()));
    let mut packed: Vec<Vec<usize>> = vec![Vec::new(); buckets];
    let mut load = vec![0usize; buckets];
    for c in order {
        let target = (0..buckets).min_by_key(|&b| load[b]).unwrap_or(0);
        load[target] += wccs[c].len();
        packed[target].push(c);
    }
    packed
}

/// The iterative Tarjan core over a root set, generic over a periodic
/// interrupt check. With an infallible check (`E = Infallible`) the
/// error path monomorphizes away. Roots that reach each other share
/// components as usual; nodes unreachable from `roots` stay out of the
/// decomposition (their `component` slot remains `usize::MAX`), which
/// the parallel driver uses to run disjoint node subsets concurrently.
fn tarjan_impl<N, E>(
    g: &DiGraph<N>,
    roots: impl IntoIterator<Item = usize>,
    mut check: impl FnMut() -> Result<(), E>,
) -> Result<SccDecomposition, E> {
    let n = g.node_count();
    const UNVISITED: usize = usize::MAX;
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut component = vec![UNVISITED; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut members: Vec<Vec<NodeId>> = Vec::new();
    let mut next_index = 0usize;

    // Work stack frames: (node, next-successor-position).
    let mut call: Vec<(usize, usize)> = Vec::new();

    for root in roots {
        if index[root] != UNVISITED {
            continue;
        }
        call.push((root, 0));
        index[root] = next_index;
        lowlink[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;

        while let Some(&mut (v, ref mut pos)) = call.last_mut() {
            check()?;
            let succs = g.successors(NodeId::new(v));
            if *pos < succs.len() {
                let w = succs[*pos].index();
                *pos += 1;
                if index[w] == UNVISITED {
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                call.pop();
                if let Some(&(parent, _)) = call.last() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    let c = members.len();
                    let mut comp = Vec::new();
                    // Pop until the component root reappears; Tarjan's
                    // invariant guarantees `v` is still on the stack, so
                    // an empty pop (impossible) just ends the component.
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        component[w] = c;
                        comp.push(NodeId::new(w));
                        if w == v {
                            break;
                        }
                    }
                    comp.sort_unstable();
                    members.push(comp);
                }
            }
        }
    }

    Ok(SccDecomposition { component, members })
}

/// Builds the condensation of `g`: one node per SCC (payload = members),
/// with an edge between two components iff `g` has an edge between their
/// members. The condensation is always a DAG.
pub fn condensation<N>(g: &DiGraph<N>) -> DiGraph<Vec<NodeId>> {
    let sccs = tarjan_scc(g);
    let mut cg = DiGraph::with_capacity(sccs.count());
    for c in 0..sccs.count() {
        cg.add_node(sccs.members(c).to_vec());
    }
    for (u, v) in g.edges() {
        let (cu, cv) = (sccs.component_of(u), sccs.component_of(v));
        if cu != cv {
            cg.add_edge(NodeId::new(cu), NodeId::new(cv));
        }
    }
    cg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topo::is_acyclic;

    #[test]
    fn simple_cycle_is_one_component() {
        let g = DiGraph::from_edges(vec![(); 3], [(0, 1), (1, 2), (2, 0)]);
        let sccs = tarjan_scc(&g);
        assert_eq!(sccs.count(), 1);
        assert_eq!(sccs.members(0).len(), 3);
    }

    #[test]
    fn dag_has_singleton_components() {
        let g = DiGraph::from_edges(vec![(); 4], [(0, 1), (1, 2), (2, 3)]);
        let sccs = tarjan_scc(&g);
        assert_eq!(sccs.count(), 4);
        assert!(sccs.nontrivial().next().is_none());
    }

    #[test]
    fn paper_example_7_component() {
        // Followings graph of the log {ABCF, ACDF, ADEF, AECF} after
        // two-cycle removal has C, D, E in one SCC (C→D→E→C).
        // Nodes: A=0 B=1 C=2 D=3 E=4 F=5.
        let g = DiGraph::from_edges(
            vec![(); 6],
            [
                (0, 1),
                (0, 2),
                (0, 3),
                (0, 4),
                (1, 2),
                (1, 5),
                (2, 3),
                (2, 5),
                (3, 4),
                (3, 5),
                (4, 2),
                (4, 5),
            ],
        );
        let sccs = tarjan_scc(&g);
        let nontrivial: Vec<_> = sccs.nontrivial().collect();
        assert_eq!(nontrivial.len(), 1);
        assert_eq!(
            nontrivial[0],
            &[NodeId::new(2), NodeId::new(3), NodeId::new(4)]
        );
    }

    #[test]
    fn two_separate_cycles() {
        let g = DiGraph::from_edges(
            vec![(); 6],
            [(0, 1), (1, 0), (2, 3), (3, 4), (4, 2), (1, 2), (5, 0)],
        );
        let sccs = tarjan_scc(&g);
        assert_eq!(sccs.count(), 3);
        assert!(sccs.same_component(NodeId::new(0), NodeId::new(1)));
        assert!(sccs.same_component(NodeId::new(2), NodeId::new(4)));
        assert!(!sccs.same_component(NodeId::new(0), NodeId::new(2)));
        assert_eq!(
            sccs.component_of(NodeId::new(5)),
            sccs.component_of(NodeId::new(5))
        );
    }

    #[test]
    fn condensation_is_acyclic() {
        let g = DiGraph::from_edges(
            vec![(); 6],
            [(0, 1), (1, 0), (1, 2), (2, 3), (3, 2), (3, 4), (4, 5)],
        );
        let cg = condensation(&g);
        assert_eq!(cg.node_count(), 4);
        assert!(is_acyclic(&cg));
        // Total members across components == node count.
        let total: usize = cg.nodes().map(|(_, m)| m.len()).sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn self_loop_is_singleton_component() {
        let g = DiGraph::from_edges(vec![(); 2], [(0, 0), (0, 1)]);
        let sccs = tarjan_scc(&g);
        assert_eq!(sccs.count(), 2);
        assert!(sccs.nontrivial().next().is_none());
    }

    #[test]
    fn budgeted_matches_plain_when_unlimited() {
        let g = DiGraph::from_edges(
            vec![(); 6],
            [(0, 1), (1, 0), (2, 3), (3, 4), (4, 2), (1, 2), (5, 0)],
        );
        let plain = tarjan_scc(&g);
        let budgeted = tarjan_scc_budgeted(&g, &Budget::unlimited()).unwrap();
        assert_eq!(plain.count(), budgeted.count());
        for v in 0..6 {
            assert_eq!(
                plain.component_of(NodeId::new(v)),
                budgeted.component_of(NodeId::new(v))
            );
        }
    }

    #[test]
    fn expired_budget_aborts_large_graph() {
        use std::time::{Duration, Instant};
        // > 1024 work-stack steps so the periodic check fires.
        let n = 5_000;
        let g = DiGraph::from_edges(vec![(); n], (0..n - 1).map(|i| (i, i + 1)));
        let budget = Budget::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(matches!(
            tarjan_scc_budgeted(&g, &budget),
            Err(GraphError::BudgetExhausted)
        ));
    }

    #[test]
    fn deep_chain_does_not_overflow() {
        // 100k-node chain — would overflow a recursive Tarjan.
        let n = 100_000;
        let g = DiGraph::from_edges(vec![(); n], (0..n - 1).map(|i| (i, i + 1)));
        let sccs = tarjan_scc(&g);
        assert_eq!(sccs.count(), n);
    }

    /// 64 disjoint directed cycles of 16 nodes each, plus 32 isolated
    /// nodes — many weak components of uneven kinds.
    fn many_cycles() -> DiGraph<()> {
        let cycles = 64usize;
        let len = 16usize;
        let n = cycles * len + 32;
        let edges = (0..cycles).flat_map(move |c| {
            let base = c * len;
            (0..len).map(move |i| (base + i, base + (i + 1) % len))
        });
        DiGraph::from_edges(vec![(); n], edges)
    }

    #[test]
    fn parallel_matches_serial_membership() {
        let g = many_cycles();
        let serial = tarjan_scc(&g);
        for threads in [2, 3, 8, 64] {
            let parallel = tarjan_scc_parallel_budgeted(&g, threads, &Budget::unlimited()).unwrap();
            assert_eq!(serial.count(), parallel.count(), "threads={threads}");
            // Same partition: every pair agrees on same_component, which
            // is the property the miners consume. Spot-check via sorted
            // member lists.
            let canon = |sccs: &SccDecomposition| {
                let mut comps: Vec<Vec<NodeId>> = sccs.iter().map(|m| m.to_vec()).collect();
                comps.sort();
                comps
            };
            assert_eq!(canon(&serial), canon(&parallel), "threads={threads}");
        }
    }

    #[test]
    fn parallel_single_weak_component_falls_back() {
        let g = DiGraph::from_edges(vec![(); 4], [(0, 1), (1, 2), (2, 0), (2, 3)]);
        let parallel = tarjan_scc_parallel_budgeted(&g, 8, &Budget::unlimited()).unwrap();
        let serial = tarjan_scc(&g);
        assert_eq!(parallel.count(), serial.count());
        for v in 0..4 {
            for w in 0..4 {
                assert_eq!(
                    parallel.same_component(NodeId::new(v), NodeId::new(w)),
                    serial.same_component(NodeId::new(v), NodeId::new(w)),
                );
            }
        }
    }

    #[test]
    fn parallel_numbering_is_reverse_topological_within_weak_components() {
        let g = many_cycles();
        let sccs = tarjan_scc_parallel_budgeted(&g, 4, &Budget::unlimited()).unwrap();
        for (u, v) in g.edges() {
            let (cu, cv) = (sccs.component_of(u), sccs.component_of(v));
            if cu != cv {
                assert!(cu > cv, "edge {u:?}->{v:?} must point down the numbering");
            }
        }
        // Every node is assigned a component.
        for v in 0..g.node_count() {
            assert!(sccs.component_of(NodeId::new(v)) < sccs.count());
        }
    }

    #[test]
    fn parallel_expired_budget_aborts() {
        use std::time::{Duration, Instant};
        let g = many_cycles();
        let budget = Budget::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(matches!(
            tarjan_scc_parallel_budgeted(&g, 4, &budget),
            Err(GraphError::BudgetExhausted)
        ));
    }
}
