//! Induced subgraphs.
//!
//! Definition 6 evaluates executions against the subgraph induced by
//! their present activities; the miners' step 5 reduces per-execution
//! induced subgraphs. This module provides the shared construction.

use crate::{DiGraph, NodeId};

/// A subgraph induced by a node subset, with the mapping back to the
/// original graph's ids.
#[derive(Debug, Clone)]
pub struct Induced<N> {
    /// The induced graph; node `i` corresponds to `original_ids[i]`.
    pub graph: DiGraph<N>,
    /// For each induced node, its id in the original graph.
    pub original_ids: Vec<NodeId>,
}

impl<N> Induced<N> {
    /// The induced-graph id of an original node, if it was selected.
    pub fn induced_id(&self, original: NodeId) -> Option<NodeId> {
        self.original_ids
            .iter()
            .position(|&o| o == original)
            .map(NodeId::new)
    }
}

/// Builds the subgraph of `g` induced by `nodes` (payloads cloned).
/// Node order in the result follows `nodes`; duplicate entries are
/// ignored after their first occurrence. Edges are exactly the edges of
/// `g` with both endpoints selected — Definition 6's
/// `{(u, v) ∈ E | u, v ∈ V'}`.
pub fn induced_subgraph<N: Clone>(g: &DiGraph<N>, nodes: &[NodeId]) -> Induced<N> {
    let mut position = vec![usize::MAX; g.node_count()];
    let mut original_ids: Vec<NodeId> = Vec::with_capacity(nodes.len());
    let mut graph = DiGraph::with_capacity(nodes.len());
    for &v in nodes {
        if position[v.index()] != usize::MAX {
            continue;
        }
        position[v.index()] = original_ids.len();
        original_ids.push(v);
        graph.add_node(g.node(v).clone());
    }
    for &v in &original_ids {
        for &s in g.successors(v) {
            if position[s.index()] != usize::MAX {
                graph.add_edge(
                    NodeId::new(position[v.index()]),
                    NodeId::new(position[s.index()]),
                );
            }
        }
    }
    Induced {
        graph,
        original_ids,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DiGraph<&'static str> {
        DiGraph::from_edges(
            vec!["A", "B", "C", "D", "E"],
            [(0, 1), (0, 2), (1, 4), (2, 3), (2, 4), (3, 4)],
        )
    }

    #[test]
    fn selects_nodes_and_internal_edges() {
        let g = sample();
        let ind = induced_subgraph(&g, &[NodeId::new(0), NodeId::new(2), NodeId::new(4)]);
        assert_eq!(ind.graph.node_count(), 3);
        // A→C and C→E survive; edges through absent B and D do not.
        assert_eq!(ind.graph.edge_count(), 2);
        assert_eq!(*ind.graph.node(NodeId::new(0)), "A");
        assert_eq!(
            ind.original_ids,
            vec![NodeId::new(0), NodeId::new(2), NodeId::new(4)]
        );
        assert_eq!(ind.induced_id(NodeId::new(4)), Some(NodeId::new(2)));
        assert_eq!(ind.induced_id(NodeId::new(1)), None);
    }

    #[test]
    fn preserves_requested_order_and_dedups() {
        let g = sample();
        let ind = induced_subgraph(
            &g,
            &[
                NodeId::new(3),
                NodeId::new(1),
                NodeId::new(3),
                NodeId::new(0),
            ],
        );
        assert_eq!(
            ind.original_ids,
            vec![NodeId::new(3), NodeId::new(1), NodeId::new(0)]
        );
        // Only A→B among the selected.
        assert_eq!(ind.graph.edge_count(), 1);
        assert!(ind.graph.has_edge(
            ind.induced_id(NodeId::new(0)).unwrap(),
            ind.induced_id(NodeId::new(1)).unwrap()
        ));
    }

    #[test]
    fn empty_and_full_selections() {
        let g = sample();
        let empty = induced_subgraph(&g, &[]);
        assert_eq!(empty.graph.node_count(), 0);
        let all: Vec<NodeId> = g.node_ids().collect();
        let full = induced_subgraph(&g, &all);
        assert_eq!(full.graph.edge_count(), g.edge_count());
    }
}
