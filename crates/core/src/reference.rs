//! Legacy nested-`Vec` mining path, kept as a differential baseline.
//!
//! The production miners lower logs into the columnar
//! [`procmine_log::EventColumns`] layout and run arena-backed scratch
//! (see `general_dag`). This module preserves the pre-columnar data
//! path — one `Vec<(vertex, start, end)>` per execution, per-execution
//! `Vec<BitSet>` scratch — exactly as it shipped, so the differential
//! test suite (and the perfsuite `mine.columnar_ratio` cell) can pin
//! the columnar path's mined models, edge supports, and counters to it.
//! Same precedent as `codec::xes_reference` in `procmine-log`.
//!
//! The reference implementations are serial and skip session plumbing
//! (deadlines, tracing, registries): they validate the same structural
//! errors ([`MineError::EmptyLog`], repeats, the special-DAG
//! precondition) and fill the same [`MinerMetrics`] counters, but
//! record no stage timings.

use crate::model::graph_skeleton;
use crate::telemetry::MinerMetrics;
use crate::{Algorithm, MineError, MinedModel, MinerOptions};
use procmine_graph::reduction::transitive_reduction_matrix;
use procmine_graph::{scc, AdjMatrix, BitSet, NodeId};
use procmine_log::WorkflowLog;

/// Step-2 counts in the legacy layout (row-major `n × n`, like the
/// production `OrderObservations`).
struct Counts {
    ordered: Vec<u32>,
    overlap: Vec<u32>,
}

/// Lowers a log the legacy way: one nested `Vec` per execution.
fn lower(log: &WorkflowLog) -> Vec<Vec<(usize, u64, u64)>> {
    log.executions()
        .iter()
        .map(|e| {
            e.instances()
                .iter()
                .map(|i| (i.activity.index(), i.start, i.end))
                .collect()
        })
        .collect()
}

/// The legacy counting pass over nested executions.
fn count(n: usize, execs: &[Vec<(usize, u64, u64)>], metrics: &mut MinerMetrics) -> Counts {
    let mut c = Counts {
        ordered: vec![0u32; n * n],
        overlap: vec![0u32; n * n],
    };
    for exec in execs {
        for (i, &(u, _, end_u)) in exec.iter().enumerate() {
            for &(v, start_v, _) in &exec[i + 1..] {
                if end_u < start_v {
                    c.ordered[u * n + v] += 1;
                } else {
                    c.overlap[u * n + v] += 1;
                    c.overlap[v * n + u] += 1;
                }
            }
        }
        let k = exec.len() as u64;
        metrics.pairs_counted += k * k.saturating_sub(1) / 2;
    }
    metrics.executions_scanned += execs.len() as u64;
    c
}

/// Threshold + two-cycle removal (steps 3 of Algorithms 1–3).
fn threshold_graph(n: usize, c: &Counts, threshold: u32, metrics: &mut MinerMetrics) -> AdjMatrix {
    metrics.edges_before_threshold += (0..n * n)
        .filter(|&i| i / n != i % n && c.ordered[i] > 0)
        .count() as u64;
    let mut g = AdjMatrix::new(n);
    for u in 0..n {
        for v in 0..n {
            if u != v && c.ordered[u * n + v] >= threshold && c.overlap[u * n + v] < threshold {
                g.add_edge(u, v);
            }
        }
    }
    let thresholded = g.edge_count();
    g.remove_two_cycles();
    metrics.edges_after_threshold += thresholded as u64;
    metrics.two_cycles_dissolved += ((thresholded - g.edge_count()) / 2) as u64;
    g
}

/// Step 4 of Algorithm 2: dissolve strongly connected components.
fn remove_sccs(g: &mut AdjMatrix, metrics: &mut MinerMetrics) {
    let digraph = g.to_digraph(|_| ());
    let sccs = scc::tarjan_scc(&digraph);
    for comp in sccs.nontrivial() {
        metrics.scc_count += 1;
        for &u in comp {
            for &v in comp {
                if u != v {
                    g.remove_edge(u.index(), v.index());
                }
            }
        }
    }
}

/// Steps 5–6 for one execution with the legacy `Vec<BitSet>` scratch:
/// induced-subgraph transitive reduction over positions, marking the
/// surviving edges.
fn mark_one_execution(g: &AdjMatrix, exec: &[(usize, u64, u64)], marked: &mut AdjMatrix) {
    let k = exec.len();
    let mut sub: Vec<BitSet> = vec![BitSet::new(k); k];
    let mut desc: Vec<BitSet> = vec![BitSet::new(k); k];
    for i in 0..k {
        let (u, _, end_u) = exec[i];
        for (j, &(v, start_v, _)) in exec.iter().enumerate().skip(i + 1) {
            if end_u < start_v && g.has_edge(u, v) {
                sub[i].insert(j);
            }
        }
    }
    for i in (0..k).rev() {
        let (before, after) = desc.split_at_mut(i + 1);
        let di = &mut before[i];
        for s in sub[i].iter() {
            di.union_with(&after[s - i - 1]);
        }
        let redundant: Vec<usize> = sub[i].iter().filter(|&s| di.contains(s)).collect();
        for s in redundant {
            sub[i].remove(s);
        }
        for s in sub[i].iter() {
            di.insert(s);
        }
    }
    for i in 0..k {
        for j in sub[i].iter() {
            marked.add_edge(exec[i].0, exec[j].0);
        }
    }
}

/// Steps 2–7 of Algorithm 2 over a lowered vertex log (legacy layout).
fn mine_vertices(
    n: usize,
    execs: &[Vec<(usize, u64, u64)>],
    threshold: u32,
    metrics: &mut MinerMetrics,
) -> (AdjMatrix, Vec<u32>) {
    let c = count(n, execs, metrics);
    let mut g = threshold_graph(n, &c, threshold, metrics);
    remove_sccs(&mut g, metrics);
    let mut marked = AdjMatrix::new(n);
    for exec in execs {
        mark_one_execution(&g, exec, &mut marked);
    }
    let unmarked: Vec<(usize, usize)> =
        g.edges().filter(|&(u, v)| !marked.has_edge(u, v)).collect();
    metrics.edges_dropped_by_reduction += unmarked.len() as u64;
    for (u, v) in unmarked {
        g.remove_edge(u, v);
    }
    metrics.edges_final += g.edge_count() as u64;
    (g, c.ordered)
}

/// Legacy Algorithm 2 (general DAG). Returns the mined model and the
/// counters the production pipeline would record for the same log.
pub fn mine_general_reference(
    log: &WorkflowLog,
    options: &MinerOptions,
) -> Result<(MinedModel, MinerMetrics), MineError> {
    if log.is_empty() {
        return Err(MineError::EmptyLog);
    }
    for exec in log.executions() {
        if exec.has_repeats() {
            return Err(MineError::RepeatsRequireCyclicMiner {
                execution: exec.id.clone(),
            });
        }
    }
    let n = log.activities().len();
    let execs = lower(log);
    let mut metrics = MinerMetrics::new();
    let (g, counts) = mine_vertices(n, &execs, options.noise_threshold, &mut metrics);
    let mut graph = graph_skeleton(log.activities());
    let mut support = Vec::with_capacity(g.edge_count());
    for (u, v) in g.edges() {
        graph.add_edge(NodeId::new(u), NodeId::new(v));
        support.push((u, v, counts[u * n + v]));
    }
    Ok((MinedModel::new(graph, support), metrics))
}

/// Legacy Algorithm 1 (special DAG): count, threshold, two-cycle
/// removal, then one *global* transitive reduction.
pub fn mine_special_reference(
    log: &WorkflowLog,
    options: &MinerOptions,
) -> Result<(MinedModel, MinerMetrics), MineError> {
    if log.is_empty() {
        return Err(MineError::EmptyLog);
    }
    let n = log.activities().len();
    for exec in log.executions() {
        if exec.has_repeats() {
            return Err(MineError::RepeatsRequireCyclicMiner {
                execution: exec.id.clone(),
            });
        }
        if exec.len() != n {
            return Err(MineError::SpecialPreconditionViolated {
                execution: exec.id.clone(),
            });
        }
    }
    let execs = lower(log);
    let mut metrics = MinerMetrics::new();
    let c = count(n, &execs, &mut metrics);
    let counts = c.ordered.clone();
    let m = threshold_graph(n, &c, options.noise_threshold, &mut metrics);
    let reduced = transitive_reduction_matrix(&m).map_err(|_| MineError::UnexpectedCycle)?;
    metrics.edges_dropped_by_reduction += (m.edge_count() - reduced.edge_count()) as u64;
    metrics.edges_final += reduced.edge_count() as u64;
    let mut graph = graph_skeleton(log.activities());
    let mut support = Vec::with_capacity(reduced.edge_count());
    for (u, v) in reduced.edges() {
        graph.add_edge(NodeId::new(u), NodeId::new(v));
        support.push((u, v, counts[u * n + v]));
    }
    Ok((MinedModel::new(graph, support), metrics))
}

/// Legacy Algorithm 3 (cyclic): instance labeling over the nested
/// layout, the Algorithm 2 pipeline on instance vertices, then the
/// instance-merge step.
pub fn mine_cyclic_reference(
    log: &WorkflowLog,
    options: &MinerOptions,
) -> Result<(MinedModel, MinerMetrics), MineError> {
    if log.is_empty() {
        return Err(MineError::EmptyLog);
    }
    let n = log.activities().len();
    let mut max_occ = vec![0usize; n];
    for exec in log.executions() {
        let mut counts = vec![0usize; n];
        for a in exec.sequence() {
            counts[a.index()] += 1;
            max_occ[a.index()] = max_occ[a.index()].max(counts[a.index()]);
        }
    }
    let mut offset = vec![0usize; n + 1];
    for a in 0..n {
        offset[a + 1] = offset[a] + max_occ[a];
    }
    let total = offset[n];
    let mut activity_of = vec![0usize; total];
    for a in 0..n {
        activity_of[offset[a]..offset[a + 1]].fill(a);
    }
    let execs: Vec<Vec<(usize, u64, u64)>> = log
        .executions()
        .iter()
        .map(|e| {
            e.instances()
                .iter()
                .zip(e.labeled_sequence())
                .map(|(inst, (a, occ))| (offset[a.index()] + occ as usize, inst.start, inst.end))
                .collect()
        })
        .collect();

    let mut metrics = MinerMetrics::new();
    let (g, counts) = mine_vertices(total, &execs, options.noise_threshold, &mut metrics);

    let mut graph = graph_skeleton(log.activities());
    let mut support_acc = vec![0u32; n * n];
    for (x, y) in g.edges() {
        let (a, b) = (activity_of[x], activity_of[y]);
        if a != b {
            graph.add_edge(NodeId::new(a), NodeId::new(b));
            support_acc[a * n + b] = support_acc[a * n + b].saturating_add(counts[x * total + y]);
        }
    }
    let support: Vec<(usize, usize, u32)> = graph
        .edges()
        .map(|(u, v)| (u.index(), v.index(), support_acc[u.index() * n + v.index()]))
        .collect();
    metrics.edges_final = support.len() as u64;
    Ok((MinedModel::new(graph, support), metrics))
}

/// Legacy auto-dispatch, mirroring `mine_auto`'s selection rules.
pub fn mine_auto_reference(
    log: &WorkflowLog,
    options: &MinerOptions,
) -> Result<(MinedModel, Algorithm, MinerMetrics), MineError> {
    if log.is_empty() {
        return Err(MineError::EmptyLog);
    }
    if log.has_repeats() {
        let (model, metrics) = mine_cyclic_reference(log, options)?;
        Ok((model, Algorithm::Cyclic, metrics))
    } else if log.every_activity_in_every_execution() {
        let (model, metrics) = mine_special_reference(log, options)?;
        Ok((model, Algorithm::SpecialDag, metrics))
    } else {
        let (model, metrics) = mine_general_reference(log, options)?;
        Ok((model, Algorithm::GeneralDag, metrics))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_reproduces_paper_example_7() {
        let log = WorkflowLog::from_strings(["ABCF", "ACDF", "ADEF", "AECF"]).unwrap();
        let (model, metrics) = mine_general_reference(&log, &MinerOptions::default()).unwrap();
        let mut edges = model.edges_named();
        edges.sort();
        assert_eq!(
            edges,
            vec![
                ("A", "B"),
                ("A", "C"),
                ("A", "D"),
                ("A", "E"),
                ("B", "C"),
                ("C", "F"),
                ("D", "F"),
                ("E", "F"),
            ]
        );
        assert_eq!(metrics.executions_scanned, 4);
        assert_eq!(metrics.pairs_counted, 4 * 6);
        assert_eq!(metrics.scc_count, 1);
        assert_eq!(metrics.edges_final, model.edge_count() as u64);
    }

    #[test]
    fn reference_reproduces_paper_example_6() {
        let log = WorkflowLog::from_strings(["ABCDE", "ACDBE", "ACBDE"]).unwrap();
        let (model, _) = mine_special_reference(&log, &MinerOptions::default()).unwrap();
        let mut edges = model.edges_named();
        edges.sort();
        assert_eq!(
            edges,
            vec![("A", "B"), ("A", "C"), ("B", "E"), ("C", "D"), ("D", "E")]
        );
    }

    #[test]
    fn reference_reproduces_paper_example_8() {
        let log = WorkflowLog::from_strings(["ABDCE", "ABDCBCE", "ABCBDCE", "ADE"]).unwrap();
        let (model, _) = mine_cyclic_reference(&log, &MinerOptions::default()).unwrap();
        assert!(
            model.has_edge("B", "C") && model.has_edge("C", "B"),
            "B⇄C cycle"
        );
    }

    #[test]
    fn reference_validates_structural_errors() {
        assert_eq!(
            mine_general_reference(&WorkflowLog::new(), &MinerOptions::default()).unwrap_err(),
            MineError::EmptyLog
        );
        let repeats = WorkflowLog::from_strings(["ABA"]).unwrap();
        assert!(matches!(
            mine_general_reference(&repeats, &MinerOptions::default()),
            Err(MineError::RepeatsRequireCyclicMiner { .. })
        ));
        let partial = WorkflowLog::from_strings(["ABC", "AB"]).unwrap();
        assert!(matches!(
            mine_special_reference(&partial, &MinerOptions::default()),
            Err(MineError::SpecialPreconditionViolated { .. })
        ));
    }

    #[test]
    fn auto_reference_dispatches_like_production() {
        let special = WorkflowLog::from_strings(["ABC", "ACB"]).unwrap();
        let (_, alg, _) = mine_auto_reference(&special, &MinerOptions::default()).unwrap();
        assert_eq!(alg, Algorithm::SpecialDag);
        let cyclic = WorkflowLog::from_strings(["ABCBD"]).unwrap();
        let (_, alg, _) = mine_auto_reference(&cyclic, &MinerOptions::default()).unwrap();
        assert_eq!(alg, Algorithm::Cyclic);
    }
}
