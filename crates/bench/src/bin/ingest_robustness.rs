//! Ingest robustness — decode throughput and salvage rates on
//! corrupted logs.
//!
//! Encodes one synthetic workload in every codec, corrupts the bytes
//! with seeded whole-line garbage at 0%, 1%, and 5% of lines, and
//! decodes each corpus under `Strict` and `BestEffort`. Reported per
//! (codec, corruption) cell:
//!
//! * strict outcome — `ok` on the clean corpus, `err@<offset>` once
//!   corruption is present (the first located decode error);
//! * BestEffort salvage — executions recovered vs. the clean count,
//!   with the decode-error tally from the [`IngestReport`];
//! * BestEffort throughput in MiB/s, so the recovery path's overhead
//!   is visible next to the strict happy path.
//!
//! Run with `--release`; the corpus is deterministic (seeded), so runs
//! are comparable across machines modulo clock speed.

use procmine_bench::{synthetic_workload, TextTable};
use procmine_log::codec::{flowmark, jsonl, seqs, xes, CodecStats};
use procmine_log::fault::corrupt_whole_lines;
use procmine_log::{IngestReport, LogError, RecoveryPolicy, WorkflowLog};
use std::time::Instant;

type DecodeFn = fn(&[u8], RecoveryPolicy, &mut IngestReport) -> Result<WorkflowLog, LogError>;

fn main() {
    let (_, log) = synthetic_workload(25, 60, 2_000, 4242);
    println!(
        "ingest robustness: {} executions, {} activities\n",
        log.len(),
        log.activities().len()
    );

    let codecs: Vec<(&str, Vec<u8>, DecodeFn)> = vec![
        (
            "flowmark",
            encode(&log, |l, b| flowmark::write_log(l, b)),
            |d, p, r| flowmark::read_log_with(d, p, &mut CodecStats::default(), r),
        ),
        (
            "seqs",
            encode(&log, |l, b| seqs::write_log(l, b)),
            |d, p, r| seqs::read_log_with(d, p, &mut CodecStats::default(), r),
        ),
        (
            "jsonl",
            encode(&log, |l, b| jsonl::write_log(l, b)),
            |d, p, r| jsonl::read_log_with(d, p, &mut CodecStats::default(), r),
        ),
        (
            "xes",
            encode(&log, |l, b| xes::write_log(l, b)),
            |d, p, r| xes::read_log_with(d, p, &mut CodecStats::default(), r),
        ),
    ];

    let mut table = TextTable::new(["codec", "corrupt", "strict", "salvaged", "errors", "MiB/s"]);
    for (name, clean, decode) in &codecs {
        let lines = clean.iter().filter(|&&b| b == b'\n').count();
        for percent in [0usize, 1, 5] {
            let k = lines * percent / 100;
            let (corrupted, _) = corrupt_whole_lines(clean, k, 7 + percent as u64);

            let mut report = IngestReport::default();
            let strict = decode(&corrupted, RecoveryPolicy::Strict, &mut report);
            let strict_cell = match strict {
                Ok(log) => format!("ok ({})", log.len()),
                Err(_) => match report.errors.first() {
                    Some(e) => format!("err@{}", e.byte_offset),
                    None => "err".to_string(),
                },
            };

            let mut report = IngestReport::default();
            let started = Instant::now();
            let salvaged = decode(&corrupted, RecoveryPolicy::BestEffort, &mut report)
                .expect("BestEffort always returns a log");
            let elapsed = started.elapsed();
            let mib_s = corrupted.len() as f64 / (1 << 20) as f64 / elapsed.as_secs_f64();

            table.row([
                name.to_string(),
                format!("{percent}%"),
                strict_cell,
                format!("{}/{}", salvaged.len(), log.len()),
                format!("{}", report.errors_total),
                format!("{mib_s:.1}"),
            ]);
        }
    }
    println!("{}", table.render());
    println!(
        "strict aborts at the first located error; BestEffort trades the\n\
         abort for per-record skips, so its salvage count bounds the cost\n\
         of each corruption level."
    );
}

fn encode<F>(log: &WorkflowLog, write: F) -> Vec<u8>
where
    F: Fn(&WorkflowLog, &mut Vec<u8>) -> Result<(), LogError>,
{
    let mut buf = Vec::new();
    write(log, &mut buf).expect("encoding a well-formed log is infallible");
    buf
}
