//! Log manipulation: filtering, merging, splitting, deduplication.
//!
//! Cleaning workflows (drop inconsistent executions and re-mine, as in
//! the `noisy_audit_log` example), evaluation workflows (train/test
//! splits for scoring learned conditions), and consolidation of logs
//! from several sources (merging re-interns activity names, so logs
//! with different tables combine correctly).

use crate::{ActivityId, Execution, WorkflowLog};

impl WorkflowLog {
    /// A new log containing only the executions satisfying `pred`,
    /// sharing this log's activity table.
    pub fn filtered(&self, mut pred: impl FnMut(&Execution) -> bool) -> WorkflowLog {
        let mut out = WorkflowLog::with_activities(self.activities().clone());
        for exec in self.executions() {
            if pred(exec) {
                out.push(exec.clone());
            }
        }
        out
    }

    /// Merges `other` into `self`. Activity names are re-interned, so
    /// the two logs may come from different tables; `other`'s execution
    /// ids are preserved.
    pub fn merge(&mut self, other: &WorkflowLog) {
        // Fast path: identical tables share the id space directly.
        let same_table = self.activities().names() == other.activities().names();
        if same_table {
            for exec in other.executions() {
                self.push(exec.clone());
            }
            return;
        }
        for exec in other.executions() {
            let instances = exec
                .instances()
                .iter()
                .map(|inst| {
                    let name = other.activities().name(inst.activity);
                    crate::ActivityInstance {
                        activity: self.intern_activity(name),
                        ..inst.clone()
                    }
                })
                .collect();
            // Infallible: the source execution was already validated and
            // re-interning changes only activity ids, not intervals.
            #[allow(clippy::expect_used)]
            self.push(
                Execution::new(exec.id.clone(), instances)
                    .expect("re-interning preserves validity"),
            );
        }
    }

    /// Splits the log into a prefix of `⌈fraction·m⌉` executions and the
    /// remaining suffix (in log order) — a train/test split for scoring
    /// learned conditions. `fraction` is clamped to `[0, 1]`.
    pub fn split_at_fraction(&self, fraction: f64) -> (WorkflowLog, WorkflowLog) {
        let fraction = fraction.clamp(0.0, 1.0);
        let cut = (self.len() as f64 * fraction).ceil() as usize;
        let mut head = WorkflowLog::with_activities(self.activities().clone());
        let mut tail = WorkflowLog::with_activities(self.activities().clone());
        for (i, exec) in self.executions().iter().enumerate() {
            if i < cut {
                head.push(exec.clone());
            } else {
                tail.push(exec.clone());
            }
        }
        (head, tail)
    }

    /// A new log with one representative per distinct activity
    /// *sequence* (first occurrence wins). The miners' output depends
    /// only on which orderings exist — except for the §6 noise counters,
    /// so deduplicate only noise-free logs.
    pub fn dedup_sequences(&self) -> WorkflowLog {
        let mut seen: std::collections::HashSet<Vec<ActivityId>> = std::collections::HashSet::new();
        self.filtered(|exec| seen.insert(exec.sequence()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filtered_keeps_matching() {
        let log = WorkflowLog::from_strings(["ABC", "AC", "ABC"]).unwrap();
        let full = log.filtered(|e| e.len() == 3);
        assert_eq!(full.len(), 2);
        assert_eq!(full.activities().len(), log.activities().len());
        let none = log.filtered(|_| false);
        assert!(none.is_empty());
    }

    #[test]
    fn merge_with_shared_table() {
        let mut a = WorkflowLog::from_strings(["AB"]).unwrap();
        let b = WorkflowLog::from_strings(["AB", "BA"]).unwrap();
        // Same names interned in the same order → fast path.
        a.merge(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.activities().len(), 2);
    }

    #[test]
    fn merge_reinterns_foreign_tables() {
        let mut a = WorkflowLog::from_sequences([["X", "Y"]]).unwrap();
        let b = WorkflowLog::from_sequences([["Y", "Z"]]).unwrap();
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.activities().len(), 3, "X, Y, Z");
        // The merged execution's Y maps to a's Y id.
        let y = a.activities().id("Y").unwrap();
        assert!(a.executions()[1].contains(y));
        assert_eq!(a.display_sequences(), vec!["X Y", "Y Z"]);
    }

    #[test]
    fn split_fraction() {
        let log = WorkflowLog::from_strings(["AB", "AB", "AB", "AB"]).unwrap();
        let (train, test) = log.split_at_fraction(0.75);
        assert_eq!(train.len(), 3);
        assert_eq!(test.len(), 1);
        let (all, none) = log.split_at_fraction(1.0);
        assert_eq!((all.len(), none.len()), (4, 0));
        let (none, all) = log.split_at_fraction(0.0);
        assert_eq!((none.len(), all.len()), (0, 4));
        // Out-of-range fractions clamp.
        let (a, _) = log.split_at_fraction(7.5);
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn dedup_sequences_keeps_first() {
        let log = WorkflowLog::from_strings(["ABC", "ACB", "ABC", "ABC"]).unwrap();
        let deduped = log.dedup_sequences();
        assert_eq!(deduped.len(), 2);
        assert_eq!(deduped.executions()[0].id, "exec-0");
        assert_eq!(deduped.display_sequences(), vec!["A B C", "A C B"]);
    }
}
