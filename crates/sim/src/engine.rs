//! Condition-driven execution engine (Flowmark semantics, §2).
//!
//! Executing a process walks its graph: when an activity `u` terminates,
//! its output `o(u)` is computed and every outgoing edge's Boolean
//! function is evaluated on it. A successor `v` becomes *ready* when all
//! of its incoming edges are resolved and at least one resolved to true
//! (AND-join with dead-path elimination: an activity all of whose
//! incoming edges resolved to false is *dead*, and its own outgoing
//! edges resolve to false transitively). Ready activities are picked in
//! random order, modelling independent agents draining the work queue.
//!
//! The engine produces the timestamped, output-carrying logs that both
//! the miners (§3–§6) and conditions mining (§7) consume.

use crate::ProcessModel;
use procmine_graph::NodeId;
use procmine_log::{ActivityInstance, Execution, LogError, WorkflowLog};
use rand::seq::SliceRandom;
use rand::Rng;

#[derive(Clone, Copy, PartialEq, Eq)]
enum NodeState {
    Unresolved,
    Ready,
    Executed,
    Dead,
}

/// How long an activity takes between its START and END events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum DurationSpec {
    /// Instantaneous activities (`start == end`) — the paper's
    /// simplification (§2).
    Instant,
    /// Every activity takes exactly this many ticks.
    Fixed(u64),
    /// Durations drawn uniformly from an inclusive range.
    Uniform(u64, u64),
}

impl DurationSpec {
    pub(crate) fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        match *self {
            DurationSpec::Instant => 0,
            DurationSpec::Fixed(d) => d,
            DurationSpec::Uniform(lo, hi) => {
                assert!(lo <= hi, "invalid duration range {lo}..={hi}");
                rng.gen_range(lo..=hi)
            }
        }
    }
}

/// Execution-engine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Activity duration model.
    pub duration: DurationSpec,
    /// Number of agents executing ready activities concurrently. With
    /// more than one agent and nonzero durations, parallel branches
    /// genuinely *overlap in time*, so the START/END interval order in
    /// the log reveals independence within a single execution (the
    /// paper's justification for the list-form simplification).
    pub agents: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            duration: DurationSpec::Instant,
            agents: 1,
        }
    }
}

/// Simulates one execution of `model`, using `rng` both for output
/// sampling and for the random interleaving of parallel branches.
///
/// The execution is recorded with instantaneous activities at strictly
/// increasing integer timestamps, matching the paper's simplification;
/// activity outputs are attached to the END side of each instance. Use
/// [`simulate_with`] for durations and multi-agent overlap.
pub fn simulate<R: Rng + ?Sized>(
    model: &ProcessModel,
    id: impl Into<String>,
    rng: &mut R,
) -> Result<Execution, LogError> {
    simulate_with(model, id, &EngineConfig::default(), rng)
}

/// Simulates one execution under an explicit [`EngineConfig`]: an
/// event-driven run where up to `agents` ready activities execute
/// concurrently, each occupying a `[start, end]` interval.
pub fn simulate_with<R: Rng + ?Sized>(
    model: &ProcessModel,
    id: impl Into<String>,
    config: &EngineConfig,
    rng: &mut R,
) -> Result<Execution, LogError> {
    assert!(config.agents >= 1, "need at least one agent");
    let g = model.graph();
    let n = g.node_count();
    let mut state = vec![NodeState::Unresolved; n];
    // Per-node: how many incoming edges are resolved / resolved-true.
    let mut resolved = vec![0usize; n];
    let mut fired = vec![0usize; n];
    let mut ready: Vec<usize> = Vec::new();
    // Activities in flight: (node, end_time, output).
    let mut running: Vec<(usize, u64, Option<Vec<i64>>)> = Vec::new();
    let mut instances: Vec<ActivityInstance> = Vec::new();
    let mut clock = 0u64;

    let start = model.start().index();
    state[start] = NodeState::Ready;
    ready.push(start);

    loop {
        // Fill free agents with random ready activities.
        while running.len() < config.agents && !ready.is_empty() {
            let pick = rng.gen_range(0..ready.len());
            let u = ready.swap_remove(pick);
            state[u] = NodeState::Executed;
            let output = model
                .output_spec(procmine_log::ActivityId::from_index(u))
                .sample(rng);
            let duration = model
                .duration_spec(procmine_log::ActivityId::from_index(u))
                .unwrap_or(config.duration)
                .sample(rng);
            instances.push(ActivityInstance {
                activity: procmine_log::ActivityId::from_index(u),
                start: clock,
                end: clock + duration,
                output: output.clone(),
            });
            running.push((u, clock + duration, output));
        }
        if running.is_empty() {
            break;
        }

        // Advance to the earliest completion; complete exactly the
        // activities ending then.
        let next_end = running.iter().map(|&(_, e, _)| e).min().expect("non-empty");
        // Under Instant durations the next start must still come
        // strictly after this end, so sequential activities never tie.
        clock = next_end + 1;
        let mut completed: Vec<(usize, Option<Vec<i64>>)> = Vec::new();
        running.retain(|&(u, e, ref out)| {
            if e == next_end {
                completed.push((u, out.clone()));
                false
            } else {
                true
            }
        });

        // Resolve outgoing edges on o(u); dead-path eliminate.
        let mut worklist: Vec<(usize, bool)> = Vec::new();
        for (u, output) in completed {
            let out_vec: Vec<i64> = output.unwrap_or_default();
            for &v in g.successors(NodeId::new(u)) {
                let cond = model
                    .condition(
                        procmine_log::ActivityId::from_index(u),
                        procmine_log::ActivityId::from_index(v.index()),
                    )
                    .expect("edge exists");
                worklist.push((v.index(), cond.eval(&out_vec)));
            }
        }
        while let Some((v, value)) = worklist.pop() {
            resolved[v] += 1;
            fired[v] += value as usize;
            if resolved[v] == g.in_degree(NodeId::new(v)) {
                if fired[v] > 0 {
                    state[v] = NodeState::Ready;
                    ready.push(v);
                } else {
                    state[v] = NodeState::Dead;
                    for &w in g.successors(NodeId::new(v)) {
                        worklist.push((w.index(), false));
                    }
                }
            }
        }
    }

    Execution::new(id, instances)
}

/// Generates a log of `m` executions of `model`. The log shares the
/// model's activity table, so mined graphs align index-for-index with
/// the ground truth.
pub fn generate_log<R: Rng + ?Sized>(
    model: &ProcessModel,
    m: usize,
    rng: &mut R,
) -> Result<WorkflowLog, LogError> {
    let mut log = WorkflowLog::with_activities(model.activities().clone());
    for i in 0..m {
        log.push(simulate(model, format!("sim-{i}"), rng)?);
    }
    Ok(log)
}

/// Generates a log of `m` executions under an explicit engine
/// configuration (durations / multi-agent overlap).
pub fn generate_log_with<R: Rng + ?Sized>(
    model: &ProcessModel,
    m: usize,
    config: &EngineConfig,
    rng: &mut R,
) -> Result<WorkflowLog, LogError> {
    let mut log = WorkflowLog::with_activities(model.activities().clone());
    for i in 0..m {
        log.push(simulate_with(model, format!("sim-{i}"), config, rng)?);
    }
    Ok(log)
}

/// Like [`generate_log`], but shuffles the order of executions at the
/// end (harmless for the miners, useful for exercising codecs with
/// interleaved case ids).
pub fn generate_log_shuffled<R: Rng + ?Sized>(
    model: &ProcessModel,
    m: usize,
    rng: &mut R,
) -> Result<WorkflowLog, LogError> {
    let log = generate_log(model, m, rng)?;
    let mut execs: Vec<Execution> = log.executions().to_vec();
    execs.shuffle(rng);
    let mut out = WorkflowLog::with_activities(model.activities().clone());
    for e in execs {
        out.push(e);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CmpOp, Condition, OutputSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn xor_diamond() -> ProcessModel {
        ProcessModel::builder("xor")
            .activity_with("A", OutputSpec::Uniform(vec![(0, 9)]))
            .activity("B")
            .activity("C")
            .activity("D")
            .edge_if("A", "B", Condition::cmp(0, CmpOp::Ge, 5))
            .edge_if("A", "C", Condition::cmp(0, CmpOp::Lt, 5))
            .edge("B", "D")
            .edge("C", "D")
            .build()
            .unwrap()
    }

    #[test]
    fn xor_takes_exactly_one_branch() {
        let model = xor_diamond();
        let mut rng = StdRng::seed_from_u64(42);
        let mut saw_b = false;
        let mut saw_c = false;
        let b = model.activities().id("B").unwrap();
        let c = model.activities().id("C").unwrap();
        for i in 0..50 {
            let e = simulate(&model, format!("x{i}"), &mut rng).unwrap();
            assert_ne!(e.contains(b), e.contains(c), "exactly one branch: {:?}", e);
            assert_eq!(e.len(), 3, "A, one branch, D");
            saw_b |= e.contains(b);
            saw_c |= e.contains(c);
            // The branch taken matches the output of A.
            let a_out = e.output_of(model.activities().id("A").unwrap()).unwrap();
            assert_eq!(e.contains(b), a_out[0] >= 5);
        }
        assert!(saw_b && saw_c, "both branches exercised across runs");
    }

    #[test]
    fn parallel_branches_interleave() {
        let model = ProcessModel::builder("par")
            .activity("S")
            .activity("X")
            .activity("Y")
            .activity("E")
            .edge("S", "X")
            .edge("S", "Y")
            .edge("X", "E")
            .edge("Y", "E")
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let mut orders = std::collections::HashSet::new();
        for i in 0..100 {
            let e = simulate(&model, format!("p{i}"), &mut rng).unwrap();
            assert_eq!(e.len(), 4, "all activities run (AND-join)");
            orders.insert(e.display(model.activities()));
        }
        assert_eq!(orders.len(), 2, "both X-Y interleavings occur: {orders:?}");
    }

    #[test]
    fn endpoints_are_start_and_end() {
        let model = xor_diamond();
        let mut rng = StdRng::seed_from_u64(3);
        for i in 0..20 {
            let e = simulate(&model, format!("e{i}"), &mut rng).unwrap();
            let (first, last) = e.endpoints();
            assert_eq!(first, model.start());
            assert_eq!(last, model.end());
        }
    }

    #[test]
    fn dead_path_elimination_propagates() {
        // A → B (false) → C → D; A → D. B is dead, C transitively dead,
        // D still runs via the direct edge.
        let model = ProcessModel::builder("dpe")
            .activity_with("A", OutputSpec::Constant(vec![0]))
            .activity("B")
            .activity("C")
            .activity("D")
            .edge_if("A", "B", Condition::False)
            .edge("B", "C")
            .edge("C", "D")
            .edge("A", "D")
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let e = simulate(&model, "d", &mut rng).unwrap();
        assert_eq!(e.display(model.activities()), "A D");
    }

    #[test]
    fn fully_dead_sink_never_happens_with_true_edges() {
        let model = ProcessModel::builder("chain")
            .activity("A")
            .activity("B")
            .activity("C")
            .edge("A", "B")
            .edge("B", "C")
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let log = generate_log(&model, 10, &mut rng).unwrap();
        assert_eq!(log.len(), 10);
        for e in log.executions() {
            assert_eq!(e.len(), 3);
        }
    }

    #[test]
    fn timestamps_strictly_increase() {
        let model = xor_diamond();
        let mut rng = StdRng::seed_from_u64(11);
        let e = simulate(&model, "t", &mut rng).unwrap();
        let inst = e.instances();
        for w in inst.windows(2) {
            assert!(w[0].end < w[1].start || w[0].start < w[1].start);
            assert_eq!(w[0].start, w[0].end, "instantaneous activities");
        }
    }

    #[test]
    fn multi_agent_runs_overlap_in_time() {
        // S → {X, Y} → E with two agents and long durations: X and Y
        // run concurrently, so their intervals overlap within a single
        // execution.
        let model = ProcessModel::builder("par")
            .activity("S")
            .activity("X")
            .activity("Y")
            .activity("E")
            .edge("S", "X")
            .edge("S", "Y")
            .edge("X", "E")
            .edge("Y", "E")
            .build()
            .unwrap();
        let cfg = EngineConfig {
            duration: DurationSpec::Fixed(10),
            agents: 2,
        };
        let mut rng = StdRng::seed_from_u64(4);
        let x = model.activities().id("X").unwrap();
        let y = model.activities().id("Y").unwrap();
        for i in 0..10 {
            let e = simulate_with(&model, format!("m{i}"), &cfg, &mut rng).unwrap();
            let xi = e.instances().iter().find(|i| i.activity == x).unwrap();
            let yi = e.instances().iter().find(|i| i.activity == y).unwrap();
            assert_eq!(xi.start, yi.start, "both branches start together");
            // Overlapping: no precedence pair between X and Y.
            assert!(xi.end >= yi.start && yi.end >= xi.start);
        }
    }

    #[test]
    fn overlap_reveals_independence_in_one_execution() {
        // With interval overlap, a single execution suffices for the
        // miner to see X ∥ Y — no need to observe both orders.
        let model = ProcessModel::builder("par")
            .activity("S")
            .activity("X")
            .activity("Y")
            .activity("E")
            .edge("S", "X")
            .edge("S", "Y")
            .edge("X", "E")
            .edge("Y", "E")
            .build()
            .unwrap();
        let cfg = EngineConfig {
            duration: DurationSpec::Uniform(5, 15),
            agents: 4,
        };
        let mut rng = StdRng::seed_from_u64(8);
        let log = generate_log_with(&model, 1, &cfg, &mut rng).unwrap();
        let exec = &log.executions()[0];
        // X and Y present, unordered.
        let pairs: Vec<_> = exec.precedence_pairs().collect();
        // S precedes X, Y, E; X and Y precede E; X-Y unordered:
        // 5 ordered pairs out of the 6 possible.
        assert_eq!(pairs.len(), 5);
    }

    #[test]
    fn single_agent_serializes_even_with_durations() {
        let model = xor_diamond();
        let cfg = EngineConfig {
            duration: DurationSpec::Uniform(1, 9),
            agents: 1,
        };
        let mut rng = StdRng::seed_from_u64(12);
        let e = simulate_with(&model, "s", &cfg, &mut rng).unwrap();
        let inst = e.instances();
        for w in inst.windows(2) {
            assert!(w[0].end < w[1].start, "one agent → strictly sequential");
        }
    }

    #[test]
    fn per_activity_durations_override_engine_default() {
        let model = ProcessModel::builder("timed")
            .activity("A")
            .activity_timed("Slow", OutputSpec::None, Some(DurationSpec::Fixed(100)))
            .activity("C")
            .edge("A", "Slow")
            .edge("Slow", "C")
            .build()
            .unwrap();
        let cfg = EngineConfig {
            duration: DurationSpec::Fixed(2),
            agents: 1,
        };
        let mut rng = StdRng::seed_from_u64(3);
        let e = simulate_with(&model, "t", &cfg, &mut rng).unwrap();
        let slow = model.activities().id("Slow").unwrap();
        let a = model.activities().id("A").unwrap();
        let inst = |id| e.instances().iter().find(|i| i.activity == id).unwrap();
        assert_eq!(inst(slow).end - inst(slow).start, 100, "override");
        assert_eq!(inst(a).end - inst(a).start, 2, "engine default");
    }

    #[test]
    fn generated_log_shares_activity_table() {
        let model = xor_diamond();
        let mut rng = StdRng::seed_from_u64(13);
        let log = generate_log(&model, 5, &mut rng).unwrap();
        assert_eq!(log.activities().len(), model.activity_count());
        assert_eq!(log.activities().id("A"), model.activities().id("A"));
    }
}
