//! XES codec — the IEEE 1849 XML interchange format used by the
//! process-mining ecosystem (ProM, PM4Py, Disco, …).
//!
//! Writing `procmine` logs as XES lets downstream users cross-check
//! mined models against other tools; reading XES lets real-world event
//! logs flow into these miners. The implementation is self-contained: a
//! minimal XML pull parser (elements, attributes, comments,
//! declarations, entity escapes) and civil-date conversion, covering the
//! XES subset the log model needs:
//!
//! * one `<trace>` per execution, named by `concept:name`;
//! * one `<event>` per START/END, with `concept:name` (activity),
//!   `lifecycle:transition` (`start` / `complete`) and `time:timestamp`
//!   (ISO 8601; the log's integer ticks are interpreted as milliseconds
//!   since the Unix epoch);
//! * instantaneous instances are written as a single `complete` event
//!   and read back as `start == end`, matching the paper's list-form
//!   simplification;
//! * output vectors ride on `complete` events as a `procmine:output`
//!   string attribute (`"1;2;3"`), a documented extension.

use super::{CodecStats, IngestReport, RecoveryPolicy};
use crate::{EventKind, EventRecord, LogError, WorkflowLog};
use std::collections::HashMap;
use std::io::{BufRead, Write};

// ---------------------------------------------------------------------------
// Civil-date conversion (proleptic Gregorian, no leap seconds).
// ---------------------------------------------------------------------------

/// Days from civil date to days since 1970-01-01 (Howard Hinnant's
/// `days_from_civil` algorithm).
fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = y - i64::from(m <= 2);
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as u64; // [0, 399]
    let mp = (m + 9) % 12; // Mar=0 … Feb=11
    let doy = (153 * mp as u64 + 2) / 5 + d as u64 - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146097 + doe as i64 - 719468
}

/// Inverse of [`days_from_civil`].
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = (z - era * 146097) as u64; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
    let y = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    (y + i64::from(m <= 2), m, d)
}

/// Formats milliseconds since the Unix epoch as
/// `YYYY-MM-DDThh:mm:ss.mmm+00:00`.
pub fn millis_to_iso8601(millis: u64) -> String {
    let total_secs = millis / 1000;
    let ms = millis % 1000;
    let days = (total_secs / 86_400) as i64;
    let secs_of_day = total_secs % 86_400;
    let (y, mo, d) = civil_from_days(days);
    let (h, mi, s) = (
        secs_of_day / 3600,
        (secs_of_day % 3600) / 60,
        secs_of_day % 60,
    );
    format!("{y:04}-{mo:02}-{d:02}T{h:02}:{mi:02}:{s:02}.{ms:03}+00:00")
}

/// Parses an ISO 8601 timestamp to milliseconds since the Unix epoch.
/// Accepts `YYYY-MM-DDThh:mm:ss[.fff][Z|±hh:mm]`; offsets are applied.
/// Timestamps before the epoch are rejected (the log model's clock is
/// unsigned).
pub fn iso8601_to_millis(text: &str) -> Result<u64, String> {
    let bytes = text.as_bytes();
    let fail = || format!("invalid ISO 8601 timestamp `{text}`");
    if bytes.len() < 19
        || bytes[4] != b'-'
        || bytes[7] != b'-'
        || (bytes[10] != b'T' && bytes[10] != b' ')
    {
        return Err(fail());
    }
    let num = |range: std::ops::Range<usize>| -> Result<i64, String> {
        text.get(range)
            .and_then(|s| s.parse().ok())
            .ok_or_else(fail)
    };
    let (y, mo, d) = (num(0..4)?, num(5..7)? as u32, num(8..10)? as u32);
    if !(1..=12).contains(&mo) {
        return Err(fail());
    }
    let leap = (y % 4 == 0 && y % 100 != 0) || y % 400 == 0;
    let days_in_month = match mo {
        4 | 6 | 9 | 11 => 30,
        2 if leap => 29,
        2 => 28,
        _ => 31,
    };
    if d == 0 || d > days_in_month {
        return Err(format!(
            "invalid ISO 8601 timestamp `{text}`: day {d} out of range for {y:04}-{mo:02}"
        ));
    }
    let (h, mi, s) = (num(11..13)?, num(14..16)?, num(17..19)?);
    if bytes[13] != b':' || bytes[16] != b':' || h > 23 || mi > 59 || s > 60 {
        return Err(fail());
    }

    let mut pos = 19;
    let mut ms: i64 = 0;
    if bytes.get(pos) == Some(&b'.') {
        let start = pos + 1;
        let mut end = start;
        while end < bytes.len() && bytes[end].is_ascii_digit() {
            end += 1;
        }
        if end == start {
            return Err(fail());
        }
        // Truncate or pad fractional seconds to milliseconds.
        let frac = &text[start..end.min(start + 3)];
        ms = frac.parse::<i64>().map_err(|_| fail())?;
        for _ in frac.len()..3 {
            ms *= 10;
        }
        pos = end;
    }

    let mut offset_minutes: i64 = 0;
    match bytes.get(pos) {
        None => {}
        Some(b'Z') if pos + 1 == bytes.len() => {}
        Some(sign @ (b'+' | b'-')) => {
            if bytes.len() != pos + 6 || bytes[pos + 3] != b':' {
                return Err(fail());
            }
            let oh = num(pos + 1..pos + 3)?;
            let om = num(pos + 4..pos + 6)?;
            offset_minutes = oh * 60 + om;
            if *sign == b'+' {
                offset_minutes = -offset_minutes; // ahead of UTC → subtract
            }
        }
        Some(_) => return Err(fail()),
    }

    let days = days_from_civil(y, mo, d);
    let total = (days * 86_400 + h * 3600 + mi * 60 + s + offset_minutes * 60) * 1000 + ms;
    u64::try_from(total).map_err(|_| format!("timestamp `{text}` is before the Unix epoch"))
}

// ---------------------------------------------------------------------------
// Minimal XML pull parser.
// ---------------------------------------------------------------------------

/// An XML event from the mini-parser.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Xml {
    Open {
        name: String,
        attrs: HashMap<String, String>,
        self_closing: bool,
    },
    Close(String),
}

struct XmlParser {
    text: Vec<char>,
    pos: usize,
}

impl XmlParser {
    fn new(text: &str) -> Self {
        XmlParser {
            text: text.chars().collect(),
            pos: 0,
        }
    }

    /// 1-based line, 1-based column (in characters), and byte offset of
    /// the current position. O(pos), but only paid on the error paths.
    fn position(&self) -> (usize, usize, u64) {
        let (mut line, mut column, mut bytes) = (1usize, 1usize, 0u64);
        for &c in &self.text[..self.pos.min(self.text.len())] {
            bytes += c.len_utf8() as u64;
            if c == '\n' {
                line += 1;
                column = 1;
            } else {
                column += 1;
            }
        }
        (line, column, bytes)
    }

    /// An error at the current position: [`LogError::UnexpectedEof`]
    /// when input ran out (truncation), [`LogError::Xml`] with
    /// line/column otherwise.
    fn error(&self, message: impl Into<String>) -> LogError {
        let (line, column, byte_offset) = self.position();
        if self.pos >= self.text.len() {
            LogError::UnexpectedEof {
                byte_offset,
                message: message.into(),
            }
        } else {
            LogError::Xml {
                line,
                column,
                message: message.into(),
            }
        }
    }

    /// After a syntax error in a recovering read: step past the
    /// offending character so the pull loop re-syncs at the next `<`.
    /// Always advances, so a corrupt document cannot loop forever.
    fn resync(&mut self) {
        self.pos += 1;
    }

    /// Next element-open or element-close event, skipping text,
    /// comments, declarations and processing instructions.
    fn next(&mut self) -> Result<Option<Xml>, LogError> {
        loop {
            // Skip character data.
            while self.pos < self.text.len() && self.text[self.pos] != '<' {
                self.pos += 1;
            }
            if self.pos >= self.text.len() {
                return Ok(None);
            }
            // Comment / declaration / PI?
            if self.starts_with("<!--") {
                self.skip_until("-->")?;
                continue;
            }
            if self.starts_with("<?") {
                self.skip_until("?>")?;
                continue;
            }
            if self.starts_with("<!") {
                self.skip_until(">")?;
                continue;
            }
            if self.starts_with("</") {
                self.pos += 2;
                let name = self.read_name()?;
                self.skip_ws();
                if !self.consume('>') {
                    return Err(self.error("malformed closing tag"));
                }
                return Ok(Some(Xml::Close(name)));
            }
            // Opening tag.
            self.pos += 1;
            let name = self.read_name()?;
            let mut attrs = HashMap::new();
            loop {
                self.skip_ws();
                if self.consume('>') {
                    return Ok(Some(Xml::Open {
                        name,
                        attrs,
                        self_closing: false,
                    }));
                }
                if self.starts_with("/>") {
                    self.pos += 2;
                    return Ok(Some(Xml::Open {
                        name,
                        attrs,
                        self_closing: true,
                    }));
                }
                let key = self.read_name()?;
                self.skip_ws();
                if !self.consume('=') {
                    return Err(self.error(format!("attribute `{key}` missing `=`")));
                }
                self.skip_ws();
                let quote = if self.consume('"') {
                    '"'
                } else if self.consume('\'') {
                    '\''
                } else {
                    return Err(self.error(format!("attribute `{key}` missing quote")));
                };
                let start = self.pos;
                while self.pos < self.text.len() && self.text[self.pos] != quote {
                    self.pos += 1;
                }
                if self.pos >= self.text.len() {
                    return Err(self.error("unterminated attribute value"));
                }
                let raw: String = self.text[start..self.pos].iter().collect();
                self.pos += 1; // closing quote
                let value = unescape(&raw).map_err(|m| self.error(m))?;
                attrs.insert(key, value);
            }
        }
    }

    fn starts_with(&self, s: &str) -> bool {
        self.text[self.pos..]
            .iter()
            .zip(s.chars())
            .filter(|(a, b)| **a == *b)
            .count()
            == s.len()
    }

    fn skip_until(&mut self, end: &str) -> Result<(), LogError> {
        while self.pos < self.text.len() {
            if self.starts_with(end) {
                self.pos += end.len();
                return Ok(());
            }
            self.pos += 1;
        }
        Err(self.error(format!("unterminated construct (expected `{end}`)")))
    }

    fn skip_ws(&mut self) {
        while self.pos < self.text.len() && self.text[self.pos].is_whitespace() {
            self.pos += 1;
        }
    }

    fn consume(&mut self, c: char) -> bool {
        if self.pos < self.text.len() && self.text[self.pos] == c {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn read_name(&mut self) -> Result<String, LogError> {
        let start = self.pos;
        while self.pos < self.text.len() {
            let c = self.text[self.pos];
            if c.is_alphanumeric() || matches!(c, ':' | '_' | '-' | '.') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.error("expected a name"));
        }
        Ok(self.text[start..self.pos].iter().collect())
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            other => out.push(other),
        }
    }
    out
}

/// Resolves entity escapes; the `Err` message is positioned by the
/// caller (via [`XmlParser::error`]).
fn unescape(s: &str) -> Result<String, String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.char_indices();
    while let Some((i, c)) = chars.next() {
        if c != '&' {
            out.push(c);
            continue;
        }
        let rest = &s[i..];
        let semi = rest
            .find(';')
            .ok_or_else(|| format!("unterminated entity in `{s}`"))?;
        let entity = &rest[1..semi];
        out.push(match entity {
            "amp" => '&',
            "lt" => '<',
            "gt" => '>',
            "quot" => '"',
            "apos" => '\'',
            other => return Err(format!("unsupported entity `&{other};`")),
        });
        // Skip the entity body.
        for _ in 0..semi {
            chars.next();
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// XES writing.
// ---------------------------------------------------------------------------

/// Writes a log as XES.
pub fn write_log<W: Write>(log: &WorkflowLog, mut w: W) -> Result<(), LogError> {
    writeln!(w, r#"<?xml version="1.0" encoding="UTF-8"?>"#)?;
    writeln!(
        w,
        r#"<log xes.version="1.0" xes.features="nested-attributes" openxes.version="procmine">"#
    )?;
    writeln!(
        w,
        r#"  <extension name="Concept" prefix="concept" uri="http://www.xes-standard.org/concept.xesext"/>"#
    )?;
    writeln!(
        w,
        r#"  <extension name="Lifecycle" prefix="lifecycle" uri="http://www.xes-standard.org/lifecycle.xesext"/>"#
    )?;
    writeln!(
        w,
        r#"  <extension name="Time" prefix="time" uri="http://www.xes-standard.org/time.xesext"/>"#
    )?;
    for exec in log.executions() {
        writeln!(w, "  <trace>")?;
        writeln!(
            w,
            r#"    <string key="concept:name" value="{}"/>"#,
            escape(&exec.id)
        )?;
        // Emit events in time order (START before END at equal stamps).
        let mut events: Vec<(u64, bool, usize)> = Vec::new(); // (time, is_end, instance)
        for (i, inst) in exec.instances().iter().enumerate() {
            if inst.start == inst.end {
                events.push((inst.end, true, i)); // single complete event
            } else {
                events.push((inst.start, false, i));
                events.push((inst.end, true, i));
            }
        }
        events.sort_by_key(|&(t, is_end, _)| (t, is_end));
        for (time, is_end, i) in events {
            let inst = &exec.instances()[i];
            let name = log.activities().name(inst.activity);
            writeln!(w, "    <event>")?;
            writeln!(
                w,
                r#"      <string key="concept:name" value="{}"/>"#,
                escape(name)
            )?;
            writeln!(
                w,
                r#"      <string key="lifecycle:transition" value="{}"/>"#,
                if is_end { "complete" } else { "start" }
            )?;
            writeln!(
                w,
                r#"      <date key="time:timestamp" value="{}"/>"#,
                millis_to_iso8601(time)
            )?;
            if is_end {
                if let Some(output) = &inst.output {
                    let joined: Vec<String> = output.iter().map(i64::to_string).collect();
                    writeln!(
                        w,
                        r#"      <string key="procmine:output" value="{}"/>"#,
                        joined.join(";")
                    )?;
                }
            }
            writeln!(w, "    </event>")?;
        }
        writeln!(w, "  </trace>")?;
    }
    writeln!(w, "</log>")?;
    Ok(())
}

// ---------------------------------------------------------------------------
// XES reading.
// ---------------------------------------------------------------------------

/// Reads an XES log. Events missing a `lifecycle:transition` are treated
/// as `complete`; a lone `complete` without a preceding `start` becomes
/// an instantaneous instance.
pub fn read_log<R: BufRead>(reader: R) -> Result<WorkflowLog, LogError> {
    read_log_with_stats(reader, &mut super::CodecStats::default())
}

/// [`read_log`] with telemetry: bytes consumed, `<event>` elements
/// parsed, and executions assembled accumulate into `stats`.
pub fn read_log_with_stats<R: BufRead>(
    reader: R,
    stats: &mut super::CodecStats,
) -> Result<WorkflowLog, LogError> {
    read_log_with(
        reader,
        RecoveryPolicy::Strict,
        stats,
        &mut IngestReport::default(),
    )
}

/// [`read_log_with_stats`] with a [`RecoveryPolicy`]. Under `Strict`
/// the first XML syntax error, undecodable event, or invalid timestamp
/// aborts (recorded in `report` with its byte offset; truncation
/// surfaces as [`LogError::UnexpectedEof`]). Under `Skip`/`BestEffort`
/// bad events are dropped, XML syntax errors re-sync at the next tag,
/// and START/END pairing falls back to lenient assembly.
pub fn read_log_with<R: BufRead>(
    mut reader: R,
    policy: RecoveryPolicy,
    stats: &mut CodecStats,
    report: &mut IngestReport,
) -> Result<WorkflowLog, LogError> {
    let mut raw = Vec::new();
    let read_result = reader.read_to_end(&mut raw);
    stats.bytes_read += raw.len() as u64;
    read_result?;
    let text = match String::from_utf8(raw) {
        Ok(text) => text,
        Err(e) => {
            let offset = e.utf8_error().valid_up_to() as u64;
            if policy.is_strict() {
                let err = LogError::Parse {
                    line: 0,
                    message: format!("input is not valid UTF-8 (first bad byte at {offset})"),
                };
                report.record_error(offset, 0, err.to_string());
                return Err(err);
            }
            report.record_error(offset, 0, "input is not valid UTF-8; decoding lossily");
            report.over_budget(policy)?;
            String::from_utf8_lossy(e.as_bytes()).into_owned()
        }
    };
    let mut parser = XmlParser::new(&text);
    let records = parse_events(&mut parser, policy, stats, report)?;
    let log = if policy.is_strict() {
        WorkflowLog::from_events(&records).map_err(|e| {
            report.record_error(stats.bytes_read, 0, e.to_string());
            e
        })?
    } else {
        let mut table = crate::ActivityTable::new();
        let assembled = crate::validate::assemble_executions_with(
            &records,
            &mut table,
            crate::validate::AssemblyPolicy::Lenient,
        )
        .map_err(|e| {
            report.record_error(stats.bytes_read, 0, e.to_string());
            e
        })?;
        report.records_skipped += assembled.diagnostics.len() as u64;
        let mut log = WorkflowLog::with_activities(table);
        for exec in assembled.executions {
            log.push(exec);
        }
        log
    };
    stats.executions_parsed += log.len() as u64;
    Ok(log)
}

fn parse_events(
    parser: &mut XmlParser,
    policy: RecoveryPolicy,
    stats: &mut CodecStats,
    report: &mut IngestReport,
) -> Result<Vec<EventRecord>, LogError> {
    let mut records: Vec<EventRecord> = Vec::new();
    // Parse state.
    let mut trace_name: Option<String> = None;
    let mut trace_counter = 0usize;
    let mut in_event = false;
    let mut event_attrs: HashMap<String, String> = HashMap::new();
    // Open (non-self-closing) elements, innermost last. A non-empty
    // stack at EOF means the document was cut off between records —
    // truncation that clean XML-level parsing would otherwise miss.
    let mut open_elements: Vec<String> = Vec::new();
    loop {
        let xml = match parser.next() {
            Ok(None) => {
                if let Some(innermost) = open_elements.last() {
                    let (line, _, byte_offset) = parser.position();
                    let err = LogError::UnexpectedEof {
                        byte_offset,
                        message: format!("input ends inside an open <{innermost}> element"),
                    };
                    report.record_error(byte_offset, line, err.to_string());
                    if policy.is_strict() {
                        return Err(err);
                    }
                    report.over_budget(policy)?;
                }
                break;
            }
            Ok(Some(xml)) => xml,
            Err(e) => {
                let (line, _, byte_offset) = parser.position();
                report.record_error(byte_offset, line, e.to_string());
                if policy.is_strict() {
                    return Err(e);
                }
                report.over_budget(policy)?;
                // Attribute state is suspect after a syntax error.
                in_event = false;
                parser.resync();
                continue;
            }
        };
        match &xml {
            Xml::Open {
                name,
                self_closing: false,
                ..
            } => open_elements.push(name.clone()),
            Xml::Close(name) => {
                // Pop to the innermost matching element; mismatches are
                // tolerated (recovery resync can drop close tags).
                if let Some(i) = open_elements.iter().rposition(|n| n == name) {
                    open_elements.truncate(i);
                }
            }
            _ => {}
        }
        match xml {
            Xml::Open { name, .. } if name == "trace" => {
                trace_counter += 1;
                trace_name = Some(format!("trace-{trace_counter}"));
            }
            Xml::Open { name, .. } if name == "event" => {
                in_event = true;
                event_attrs.clear();
            }
            Xml::Open { name, attrs, .. }
                if matches!(
                    name.as_str(),
                    "string" | "date" | "int" | "float" | "boolean"
                ) =>
            {
                // Nested attributes are allowed by XES; we only need the
                // top-level key/value, children are skipped naturally.
                let key = attrs.get("key").cloned().unwrap_or_default();
                let value = attrs.get("value").cloned().unwrap_or_default();
                if in_event {
                    event_attrs.insert(key, value);
                } else if key == "concept:name" && trace_name.is_some() {
                    trace_name = Some(value);
                }
            }
            Xml::Close(name) if name == "event" => {
                in_event = false;
                match close_event(&event_attrs, trace_name.as_deref(), &mut records, parser) {
                    Ok(()) => {
                        stats.events_parsed += 1;
                        report.records_parsed += 1;
                    }
                    Err(e) => {
                        let (line, _, byte_offset) = parser.position();
                        report.record_error(byte_offset, line, e.to_string());
                        if policy.is_strict() {
                            return Err(e);
                        }
                        report.records_skipped += 1;
                        report.over_budget(policy)?;
                    }
                }
            }
            Xml::Close(name) if name == "trace" => {
                trace_name = None;
            }
            _ => {}
        }
    }
    Ok(records)
}

/// Turns one closed `<event>` into START/END records. Validates before
/// pushing, so a failed event leaves `records` untouched.
fn close_event(
    event_attrs: &HashMap<String, String>,
    trace_name: Option<&str>,
    records: &mut Vec<EventRecord>,
    parser: &XmlParser,
) -> Result<(), LogError> {
    let case = trace_name.unwrap_or("trace-0").to_string();
    let activity = event_attrs
        .get("concept:name")
        .cloned()
        .ok_or_else(|| parser.error("event without concept:name"))?;
    let stamp = match event_attrs.get("time:timestamp") {
        Some(ts) => iso8601_to_millis(ts).map_err(|message| parser.error(message))?,
        None => records.len() as u64, // ordinal fallback
    };
    let transition = event_attrs
        .get("lifecycle:transition")
        .map(|s| s.to_ascii_lowercase())
        .unwrap_or_else(|| "complete".to_string());
    let output = event_attrs.get("procmine:output").map(|v| {
        v.split(';')
            .filter_map(|x| x.trim().parse::<i64>().ok())
            .collect::<Vec<i64>>()
    });
    match transition.as_str() {
        "start" => records.push(EventRecord {
            process: case,
            activity,
            kind: EventKind::Start,
            time: stamp,
            output: None,
        }),
        // Everything else — complete, and coarse lifecycles like
        // "ate_abort" — closes the instance.
        _ => {
            // If no START is open for this activity in this case,
            // synthesize an instantaneous one.
            let open_starts = records
                .iter()
                .filter(|r| {
                    r.process == case && r.activity == activity && r.kind == EventKind::Start
                })
                .count();
            let closed = records
                .iter()
                .filter(|r| r.process == case && r.activity == activity && r.kind == EventKind::End)
                .count();
            if open_starts == closed {
                records.push(EventRecord {
                    process: case.clone(),
                    activity: activity.clone(),
                    kind: EventKind::Start,
                    time: stamp,
                    output: None,
                });
            }
            records.push(EventRecord {
                process: case,
                activity,
                kind: EventKind::End,
                time: stamp,
                output,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ActivityInstance;
    use crate::Execution;

    #[test]
    fn civil_date_round_trip() {
        for days in [-719468i64, -1, 0, 1, 365, 10957, 18993, 2932896] {
            let (y, m, d) = civil_from_days(days);
            assert_eq!(days_from_civil(y, m, d), days, "{y}-{m}-{d}");
        }
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(10957), (2000, 1, 1));
        assert_eq!(days_from_civil(2026, 7, 5), 20639);
    }

    #[test]
    fn iso8601_round_trip() {
        for millis in [0u64, 1, 999, 1000, 86_400_000, 1_700_000_000_123] {
            let iso = millis_to_iso8601(millis);
            assert_eq!(iso8601_to_millis(&iso).unwrap(), millis, "{iso}");
        }
        assert_eq!(millis_to_iso8601(0), "1970-01-01T00:00:00.000+00:00");
    }

    #[test]
    fn iso8601_variants() {
        assert_eq!(iso8601_to_millis("1970-01-01T00:00:01Z").unwrap(), 1000);
        assert_eq!(iso8601_to_millis("1970-01-01T00:00:00.5Z").unwrap(), 500);
        assert_eq!(
            iso8601_to_millis("1970-01-01T01:00:00+01:00").unwrap(),
            0,
            "offset ahead of UTC subtracts"
        );
        assert_eq!(
            iso8601_to_millis("1969-12-31T23:00:00-01:00").unwrap(),
            0,
            "offset behind UTC adds"
        );
        assert_eq!(iso8601_to_millis("1970-01-01 00:00:00").unwrap(), 0);
        for bad in [
            "1970-13-01T00:00:00Z",
            "not a date",
            "1970-01-01T00:00",
            "1969-01-01T00:00:00Z",
        ] {
            assert!(iso8601_to_millis(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn xes_round_trip_instantaneous() {
        let log = WorkflowLog::from_strings(["ABCE", "ACDE"]).unwrap();
        let mut buf = Vec::new();
        write_log(&log, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.contains("<trace>"));
        assert!(text.contains(r#"<string key="lifecycle:transition" value="complete"/>"#));
        assert!(
            !text.contains(r#"value="start""#),
            "instantaneous → complete only"
        );

        let back = read_log(buf.as_slice()).unwrap();
        assert_eq!(back.display_sequences(), log.display_sequences());
    }

    #[test]
    fn xes_round_trip_intervals_and_outputs() {
        let mut table = crate::ActivityTable::new();
        let a = table.intern("Approve & Review");
        let b = table.intern("Ship<fast>");
        let mut log = WorkflowLog::with_activities(table);
        log.push(
            Execution::new(
                "case \"1\"",
                vec![
                    ActivityInstance {
                        activity: a,
                        start: 0,
                        end: 5000,
                        output: Some(vec![-3, 12]),
                    },
                    ActivityInstance {
                        activity: b,
                        start: 2000,
                        end: 9000,
                        output: None,
                    },
                ],
            )
            .unwrap(),
        );
        let mut buf = Vec::new();
        write_log(&log, &mut buf).unwrap();
        let back = read_log(buf.as_slice()).unwrap();
        assert_eq!(back.len(), 1);
        let exec = &back.executions()[0];
        assert_eq!(exec.id, "case \"1\"");
        assert_eq!(exec.instances().len(), 2);
        let aid = back.activities().id("Approve & Review").unwrap();
        let inst = exec.instances().iter().find(|i| i.activity == aid).unwrap();
        assert_eq!((inst.start, inst.end), (0, 5000));
        assert_eq!(inst.output.as_deref(), Some(&[-3i64, 12][..]));
        // Overlap preserved.
        assert_eq!(exec.precedence_pairs().count(), 0);
    }

    #[test]
    fn reads_foreign_xes() {
        // A PM4Py-style export: no start events, extra attributes,
        // comments, single quotes.
        let text = r#"<?xml version='1.0' encoding='UTF-8'?>
<!-- exported elsewhere -->
<log xes.version="1846.2016">
  <string key="source" value="other tool"/>
  <trace>
    <string key="concept:name" value="order-17"/>
    <string key="customer" value="ACME &amp; sons"/>
    <event>
      <string key="concept:name" value="register"/>
      <date key="time:timestamp" value="2024-01-01T10:00:00.000+00:00"/>
      <int key="amount" value="250"/>
    </event>
    <event>
      <string key="concept:name" value="ship"/>
      <date key="time:timestamp" value="2024-01-02T10:00:00.000+00:00"/>
    </event>
  </trace>
</log>"#;
        let log = read_log(text.as_bytes()).unwrap();
        assert_eq!(log.len(), 1);
        assert_eq!(log.executions()[0].id, "order-17");
        assert_eq!(log.display_sequences(), vec!["register ship"]);
    }

    #[test]
    fn malformed_xml_is_rejected() {
        for bad in [
            "<log><trace><event></log>", // mismatched nesting is tolerated…
            "<log><event><string key=></event></log>", // …but broken attributes are not
            "<log><trace><event><string key='concept:name' value='A'",
        ] {
            // Only assert no panic; structurally-broken inputs either
            // error or produce an empty/partial log.
            let _ = read_log(bad.as_bytes());
        }
        let bad_attr =
            "<log><event><string key=\"concept:name\" value=\"unterminated></event></log>";
        assert!(read_log(bad_attr.as_bytes()).is_err());
    }

    #[test]
    fn mining_from_xes_works() {
        let log = WorkflowLog::from_strings(["ABCF", "ACDF", "ADEF", "AECF"]).unwrap();
        let mut buf = Vec::new();
        write_log(&log, &mut buf).unwrap();
        let back = read_log(buf.as_slice()).unwrap();
        assert_eq!(back.display_sequences(), log.display_sequences());
        assert_eq!(back.activities().len(), log.activities().len());
    }
}
