//! Log codecs: serialization formats for workflow logs.
//!
//! Three formats are provided:
//!
//! * [`flowmark`] — a CSV-like event format modelled on the IBM Flowmark
//!   audit-trail convention the paper's implementation consumed: one
//!   event record `(process, activity, START|END, timestamp, output?)`
//!   per line;
//! * [`seqs`] — one execution per line as whitespace-separated activity
//!   names (the paper's compact `ABCE` notation, generalized to
//!   multi-character names);
//! * [`jsonl`] — one JSON object per execution, carrying full interval
//!   and output information losslessly;
//! * [`xes`] — the IEEE 1849 XML interchange format of the
//!   process-mining ecosystem (ProM, PM4Py), for cross-tool workflows.

pub mod flowmark;
pub mod jsonl;
pub mod seqs;
pub mod stream;
pub mod xes;

use std::io::{BufRead, Read};

/// Byte and event tallies from one codec read.
///
/// Every codec has a `read_log_instrumented` twin that fills one of
/// these; the plain `read_log` entry points discard the stats. Fields
/// accumulate, so one `CodecStats` can tally several reads.
///
/// `events_parsed` counts the format's natural unit: event lines for
/// [`flowmark`], activity names for [`seqs`], activity instances for
/// [`jsonl`], and `<event>` elements for [`xes`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CodecStats {
    /// Bytes consumed from the underlying reader.
    pub bytes_read: u64,
    /// Events parsed (see the type docs for the per-format unit).
    pub events_parsed: u64,
    /// Executions in the assembled log.
    pub executions_parsed: u64,
}

impl CodecStats {
    /// Adds `other`'s tallies into `self` (stats from separate reads or
    /// a finished [`stream::ExecutionStream`]).
    pub fn merge(&mut self, other: &CodecStats) {
        self.bytes_read += other.bytes_read;
        self.events_parsed += other.events_parsed;
        self.executions_parsed += other.executions_parsed;
    }

    /// Machine-readable JSON object with a stable key order (matches
    /// the field order above).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"bytes_read\":{},\"events_parsed\":{},\"executions_parsed\":{}}}",
            self.bytes_read, self.events_parsed, self.executions_parsed
        )
    }
}

/// A [`BufRead`] adapter that counts the bytes consumed through it.
///
/// Bytes are tallied in [`BufRead::consume`] (the line-oriented codecs)
/// and in [`Read::read`] (the slurping XES codec); each codec drives
/// exactly one of the two paths, so nothing is double-counted.
pub struct CountingReader<R> {
    inner: R,
    bytes: u64,
}

impl<R> CountingReader<R> {
    /// Wraps a reader with a zeroed byte counter.
    pub fn new(inner: R) -> Self {
        CountingReader { inner, bytes: 0 }
    }

    /// Bytes consumed so far.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl<R: Read> Read for CountingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.bytes += n as u64;
        Ok(n)
    }
}

impl<R: BufRead> BufRead for CountingReader<R> {
    fn fill_buf(&mut self) -> std::io::Result<&[u8]> {
        self.inner.fill_buf()
    }

    fn consume(&mut self, amt: usize) {
        self.bytes += amt as u64;
        self.inner.consume(amt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorkflowLog;

    #[test]
    fn seqs_stats_count_bytes_names_and_executions() {
        let text = "# log\nA B C E\nA C D E\n";
        let mut stats = CodecStats::default();
        let log = seqs::read_log_instrumented(text.as_bytes(), &mut stats).unwrap();
        assert_eq!(log.len(), 2);
        assert_eq!(stats.bytes_read, text.len() as u64);
        assert_eq!(stats.events_parsed, 8);
        assert_eq!(stats.executions_parsed, 2);
    }

    #[test]
    fn flowmark_stats_count_event_lines() {
        let text = "p1,A,START,0\np1,A,END,1\np1,B,START,2\np1,B,END,3\n";
        let mut stats = CodecStats::default();
        let log = flowmark::read_log_instrumented(text.as_bytes(), &mut stats).unwrap();
        assert_eq!(log.len(), 1);
        assert_eq!(stats.bytes_read, text.len() as u64);
        assert_eq!(stats.events_parsed, 4);
        assert_eq!(stats.executions_parsed, 1);
    }

    #[test]
    fn jsonl_stats_count_instances() {
        let log = WorkflowLog::from_strings(["ABC", "AB"]).unwrap();
        let mut buf = Vec::new();
        jsonl::write_log(&log, &mut buf).unwrap();
        let mut stats = CodecStats::default();
        let back = jsonl::read_log_instrumented(buf.as_slice(), &mut stats).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(stats.bytes_read, buf.len() as u64);
        assert_eq!(stats.events_parsed, 5);
        assert_eq!(stats.executions_parsed, 2);
    }

    #[test]
    fn xes_stats_count_event_elements() {
        let log = WorkflowLog::from_strings(["ABC", "AB"]).unwrap();
        let mut buf = Vec::new();
        xes::write_log(&log, &mut buf).unwrap();
        let mut stats = CodecStats::default();
        let back = xes::read_log_instrumented(buf.as_slice(), &mut stats).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(stats.bytes_read, buf.len() as u64);
        // Instantaneous instances write one `complete` element each.
        assert_eq!(stats.events_parsed, 5);
        assert_eq!(stats.executions_parsed, 2);
    }

    #[test]
    fn stats_accumulate_across_reads() {
        let text = "A B\n";
        let mut stats = CodecStats::default();
        seqs::read_log_instrumented(text.as_bytes(), &mut stats).unwrap();
        seqs::read_log_instrumented(text.as_bytes(), &mut stats).unwrap();
        assert_eq!(stats.bytes_read, 2 * text.len() as u64);
        assert_eq!(stats.events_parsed, 4);
        assert_eq!(stats.executions_parsed, 2);
    }

    #[test]
    fn stats_merge_adds_fields() {
        let mut a = CodecStats {
            bytes_read: 1,
            events_parsed: 2,
            executions_parsed: 3,
        };
        a.merge(&CodecStats {
            bytes_read: 10,
            events_parsed: 20,
            executions_parsed: 30,
        });
        assert_eq!(
            a,
            CodecStats {
                bytes_read: 11,
                events_parsed: 22,
                executions_parsed: 33,
            }
        );
    }

    #[test]
    fn stats_json_has_stable_key_order() {
        let stats = CodecStats {
            bytes_read: 1,
            events_parsed: 2,
            executions_parsed: 3,
        };
        assert_eq!(
            stats.to_json(),
            "{\"bytes_read\":1,\"events_parsed\":2,\"executions_parsed\":3}"
        );
    }
}
