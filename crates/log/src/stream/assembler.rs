//! The interleaved case assembler: events in, completed executions out.
//!
//! [`ExecutionStream`](crate::codec::stream::ExecutionStream) assumes
//! *contiguous cases* — all records of one case adjacent in the log.
//! Real multi-writer audit trails interleave cases freely, and under
//! that assumption a case id that reappears is silently split into two
//! executions, corrupting follows counts. [`CaseAssembler`] drops the
//! assumption: events are keyed into an open-case map by case id, and a
//! case is assembled into an [`Execution`](crate::Execution) when it
//! *closes* — evicted by the memory bound, or flushed at end of input.
//!
//! # Memory bound
//!
//! An unbounded stream can contain cases that never complete (a crashed
//! writer, a case id typo). The map is therefore bounded by
//! [`AssemblerConfig::max_open_cases`]: when a new case would exceed
//! the bound, the least-recently-touched case is *evicted* — assembled
//! leniently, its salvageable part delivered downstream, its unmatched
//! events dropped and reported. Evictions of structurally incomplete
//! cases are counted in
//! [`IngestReport::cases_evicted`](crate::IngestReport::cases_evicted)
//! and announced through [`Observer::on_eviction`]; an evicted case
//! whose events happen to pair up cleanly is delivered as a normal
//! completion and not counted (indistinguishable from a finished case).
//!
//! If events for an evicted case arrive later they open a *fresh* case
//! under the same id — the split the bound forces. Size the window
//! above the log's interleaving depth and no complete case is ever
//! split; the `--follow` parity tests pin exactly this.

use super::{Observer, SourceLocation, StreamError, StreamSink};
use crate::validate::{assemble_executions_with, locate_diagnostic, AssemblyPolicy};
use crate::{ActivityTable, EventRecord, IngestReport};
use std::collections::HashMap;

/// Default [`AssemblerConfig::max_open_cases`]: generous for real logs
/// (the paper's 107 MB trail had far fewer concurrent cases) while
/// keeping worst-case memory far below materializing the log.
pub const DEFAULT_OPEN_CASE_WINDOW: usize = 1024;

/// Configuration for [`CaseAssembler`].
#[derive(Debug, Clone, Copy)]
pub struct AssemblerConfig {
    /// Upper bound on concurrently open cases; `0` means unbounded.
    pub max_open_cases: usize,
    /// How end-of-input assembly treats unmatched events. Evicted cases
    /// are always assembled leniently — under
    /// [`AssemblyPolicy::Strict`] an eviction would otherwise turn the
    /// memory bound itself into an input error.
    pub assembly: AssemblyPolicy,
}

impl Default for AssemblerConfig {
    fn default() -> Self {
        AssemblerConfig {
            max_open_cases: DEFAULT_OPEN_CASE_WINDOW,
            assembly: AssemblyPolicy::Lenient,
        }
    }
}

/// Buffered state of one open case.
struct OpenCase {
    records: Vec<EventRecord>,
    locations: Vec<SourceLocation>,
    /// Sequence number of the first event (flush order at finish).
    opened: u64,
    /// Sequence number of the latest event (LRU eviction order).
    last_touch: u64,
}

/// Keyed open-case map turning an interleaved event stream into
/// completed executions for an [`Observer`]. See the module docs for
/// the state machine and eviction policy.
pub struct CaseAssembler<O: Observer> {
    config: AssemblerConfig,
    observer: O,
    table: ActivityTable,
    open: HashMap<String, OpenCase>,
    /// Logical clock: one tick per event, orders `opened`/`last_touch`.
    clock: u64,
    executions_emitted: u64,
    report: IngestReport,
    finished: bool,
}

impl<O: Observer> CaseAssembler<O> {
    /// Creates an assembler delivering completed executions to
    /// `observer`.
    pub fn new(config: AssemblerConfig, observer: O) -> Self {
        CaseAssembler {
            config,
            observer,
            table: ActivityTable::new(),
            open: HashMap::new(),
            clock: 0,
            executions_emitted: 0,
            report: IngestReport::default(),
            finished: false,
        }
    }

    /// The activity table accumulated so far (ids in delivered
    /// executions are relative to it; it only grows).
    pub fn activities(&self) -> &ActivityTable {
        &self.table
    }

    /// Cases currently buffered — always `<= max_open_cases` when the
    /// bound is set (the eviction test pins this).
    pub fn open_cases(&self) -> usize {
        self.open.len()
    }

    /// Executions delivered to the observer so far.
    pub fn executions_emitted(&self) -> u64 {
        self.executions_emitted
    }

    /// Assembly-side ingest accounting: events dropped by lenient
    /// assembly (`records_skipped`, located in `errors`) and
    /// `cases_evicted`. Parse-side tallies live in the upstream
    /// source's report; merge the two for a complete picture.
    pub fn report(&self) -> &IngestReport {
        &self.report
    }

    /// Unwraps the observer (after [`StreamSink::finish`]).
    pub fn into_observer(self) -> O {
        self.observer
    }

    /// Closes one case: assemble, account diagnostics, deliver.
    fn close_case(
        &mut self,
        name: &str,
        case: OpenCase,
        assembly: AssemblyPolicy,
        eviction: bool,
    ) -> Result<(), StreamError> {
        let assembled = assemble_executions_with(&case.records, &mut self.table, assembly)?;
        self.report.records_skipped += assembled.diagnostics.len() as u64;
        for diag in &assembled.diagnostics {
            let at = locate_diagnostic(&case.records, diag)
                .map(|i| case.locations[i])
                .unwrap_or_default();
            self.report
                .record_diagnostic(at.byte_offset, at.line, diag.to_string());
        }
        if eviction && !assembled.diagnostics.is_empty() {
            self.report.cases_evicted += 1;
            self.observer.on_eviction(name, case.records.len());
        }
        for exec in &assembled.executions {
            self.observer.on_execution(exec, &self.table)?;
            self.executions_emitted += 1;
        }
        Ok(())
    }

    /// Evicts the least-recently-touched case to honor the bound.
    fn evict_lru(&mut self) -> Result<(), StreamError> {
        let Some(victim) = self
            .open
            .iter()
            .min_by_key(|(_, c)| c.last_touch)
            .map(|(name, _)| name.clone())
        else {
            return Ok(());
        };
        let Some(case) = self.open.remove(&victim) else {
            return Ok(()); // unreachable: key just came from the map
        };
        self.close_case(&victim, case, AssemblyPolicy::Lenient, true)
    }
}

impl<O: Observer> StreamSink for CaseAssembler<O> {
    fn on_event(&mut self, event: EventRecord, at: SourceLocation) -> Result<(), StreamError> {
        let tick = self.clock;
        self.clock += 1;
        if let Some(case) = self.open.get_mut(&event.process) {
            case.last_touch = tick;
            case.records.push(event);
            case.locations.push(at);
            return Ok(());
        }
        if self.config.max_open_cases > 0 && self.open.len() >= self.config.max_open_cases {
            self.evict_lru()?;
        }
        self.open.insert(
            event.process.clone(),
            OpenCase {
                records: vec![event],
                locations: vec![at],
                opened: tick,
                last_touch: tick,
            },
        );
        Ok(())
    }

    fn finish(&mut self) -> Result<(), StreamError> {
        if self.finished {
            return Ok(());
        }
        self.finished = true;
        // Flush remaining cases in the order they were opened, so a
        // fully buffered (non-evicting) run reproduces batch order.
        let mut names: Vec<(u64, String)> = self
            .open
            .iter()
            .map(|(name, c)| (c.opened, name.clone()))
            .collect();
        names.sort_unstable();
        let assembly = self.config.assembly;
        for (_, name) in names {
            let Some(case) = self.open.remove(&name) else {
                continue; // unreachable: keys snapshot from the map
            };
            self.close_case(&name, case, assembly, false)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Execution;

    /// Observer capturing displayed sequences and eviction notices.
    #[derive(Default)]
    struct Capture {
        execs: Vec<(String, String)>,
        evictions: Vec<(String, usize)>,
    }

    impl Observer for &mut Capture {
        fn on_execution(
            &mut self,
            exec: &Execution,
            table: &ActivityTable,
        ) -> Result<(), StreamError> {
            self.execs.push((exec.id.clone(), exec.display(table)));
            Ok(())
        }

        fn on_eviction(&mut self, case: &str, buffered: usize) {
            self.evictions.push((case.to_string(), buffered));
        }
    }

    fn feed(
        assembler: &mut CaseAssembler<impl Observer>,
        events: &[EventRecord],
    ) -> Result<(), StreamError> {
        for (i, e) in events.iter().enumerate() {
            assembler.on_event(
                e.clone(),
                SourceLocation {
                    byte_offset: i as u64,
                    line: i + 1,
                },
            )?;
        }
        assembler.finish()
    }

    #[test]
    fn interleaved_cases_assemble_whole() {
        let mut cap = Capture::default();
        let mut asm = CaseAssembler::new(AssemblerConfig::default(), &mut cap);
        feed(
            &mut asm,
            &[
                EventRecord::start("p1", "A", 0),
                EventRecord::start("p2", "A", 0),
                EventRecord::end("p1", "A", 1, None),
                EventRecord::end("p2", "A", 1, None),
                EventRecord::start("p1", "B", 2), // p1 reappears: same case
                EventRecord::end("p1", "B", 3, None),
            ],
        )
        .unwrap();
        assert_eq!(asm.report().cases_evicted, 0);
        drop(asm);
        assert_eq!(
            cap.execs,
            vec![
                ("p1".to_string(), "A B".to_string()),
                ("p2".to_string(), "A".to_string()),
            ]
        );
    }

    #[test]
    fn eviction_bounds_open_cases_and_reports() {
        let mut cap = Capture::default();
        let mut asm = CaseAssembler::new(
            AssemblerConfig {
                max_open_cases: 2,
                ..AssemblerConfig::default()
            },
            &mut cap,
        );
        // Three never-completing cases: the third arrival evicts p1.
        for (i, case) in ["p1", "p2", "p3"].iter().enumerate() {
            asm.on_event(
                EventRecord::start(*case, "A", i as u64),
                SourceLocation::default(),
            )
            .unwrap();
            assert!(asm.open_cases() <= 2);
        }
        assert_eq!(asm.report().cases_evicted, 1);
        assert_eq!(asm.report().records_skipped, 1, "p1's dangling START");
        drop(asm);
        assert_eq!(cap.evictions, vec![("p1".to_string(), 1)]);
    }

    #[test]
    fn evicted_balanced_case_is_a_normal_completion() {
        let mut cap = Capture::default();
        let mut asm = CaseAssembler::new(
            AssemblerConfig {
                max_open_cases: 1,
                ..AssemblerConfig::default()
            },
            &mut cap,
        );
        feed(
            &mut asm,
            &[
                EventRecord::start("p1", "A", 0),
                EventRecord::end("p1", "A", 1, None),
                EventRecord::start("p2", "B", 2), // evicts balanced p1
                EventRecord::end("p2", "B", 3, None),
            ],
        )
        .unwrap();
        assert_eq!(asm.report().cases_evicted, 0, "balanced eviction is free");
        drop(asm);
        assert_eq!(cap.evictions, vec![]);
        assert_eq!(cap.execs.len(), 2);
    }

    #[test]
    fn finish_flushes_in_opened_order() {
        let mut cap = Capture::default();
        let mut asm = CaseAssembler::new(AssemblerConfig::default(), &mut cap);
        feed(
            &mut asm,
            &[
                EventRecord::start("late", "A", 0),
                EventRecord::start("early", "B", 0),
                EventRecord::end("early", "B", 1, None),
                EventRecord::end("late", "A", 1, None),
            ],
        )
        .unwrap();
        drop(asm);
        let ids: Vec<&str> = cap.execs.iter().map(|(id, _)| id.as_str()).collect();
        assert_eq!(ids, ["late", "early"], "first-event order, not close order");
    }

    #[test]
    fn strict_finish_surfaces_unmatched_events() {
        let mut cap = Capture::default();
        let mut asm = CaseAssembler::new(
            AssemblerConfig {
                assembly: AssemblyPolicy::Strict,
                ..AssemblerConfig::default()
            },
            &mut cap,
        );
        let err = feed(&mut asm, &[EventRecord::start("p1", "A", 0)]).unwrap_err();
        assert!(matches!(
            err,
            StreamError::Log(crate::LogError::UnmatchedStart { .. })
        ));
    }

    #[test]
    fn lenient_diagnostics_carry_source_locations() {
        let mut cap = Capture::default();
        let mut asm = CaseAssembler::new(AssemblerConfig::default(), &mut cap);
        feed(
            &mut asm,
            &[
                EventRecord::start("p1", "A", 0),
                EventRecord::end("p1", "A", 1, None),
                EventRecord::end("p1", "Z", 2, None), // dangling END at line 3
            ],
        )
        .unwrap();
        assert_eq!(asm.report().records_skipped, 1);
        assert_eq!(asm.report().errors.len(), 1);
        assert_eq!(asm.report().errors[0].line, 3);
        assert_eq!(asm.report().errors[0].byte_offset, 2);
        assert_eq!(
            asm.report().errors_total,
            0,
            "diagnostics must not burn the Skip budget"
        );
    }

    #[test]
    fn finish_is_idempotent() {
        let mut cap = Capture::default();
        let mut asm = CaseAssembler::new(AssemblerConfig::default(), &mut cap);
        asm.on_event(EventRecord::start("p", "A", 0), SourceLocation::default())
            .unwrap();
        asm.on_event(
            EventRecord::end("p", "A", 1, None),
            SourceLocation::default(),
        )
        .unwrap();
        asm.finish().unwrap();
        asm.finish().unwrap();
        drop(asm);
        assert_eq!(cap.execs.len(), 1);
    }
}
