//! Topological ordering (Kahn's algorithm) and cycle detection.
//!
//! The Appendix-A transitive-reduction algorithm visits vertices "in
//! reverse topological order"; this module supplies that order and, as a
//! byproduct, a DAG check used to validate miner outputs.

use crate::{DiGraph, GraphError, NodeId};
use std::collections::VecDeque;

/// Computes a topological ordering of `g` using Kahn's algorithm.
///
/// Returns [`GraphError::CycleDetected`] if `g` has a cycle. Ties are
/// broken by node id (the queue is FIFO over ids inserted in increasing
/// order), so the result is deterministic.
pub fn topological_sort<N>(g: &DiGraph<N>) -> Result<Vec<NodeId>, GraphError> {
    let n = g.node_count();
    let mut in_deg: Vec<usize> = (0..n).map(|i| g.in_degree(NodeId::new(i))).collect();
    let mut queue: VecDeque<NodeId> = g.node_ids().filter(|&v| in_deg[v.index()] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for &w in g.successors(v) {
            in_deg[w.index()] -= 1;
            if in_deg[w.index()] == 0 {
                queue.push_back(w);
            }
        }
    }
    if order.len() == n {
        Ok(order)
    } else {
        // Some node still has positive in-degree: it lies on or below a
        // cycle (Kahn's algorithm emitted fewer than n nodes).
        #[allow(clippy::expect_used)]
        let node = (0..n)
            .find(|&i| in_deg[i] > 0)
            .expect("cycle node must exist");
        Err(GraphError::CycleDetected { node })
    }
}

/// `true` if `g` contains no directed cycle.
pub fn is_acyclic<N>(g: &DiGraph<N>) -> bool {
    topological_sort(g).is_ok()
}

/// `true` if `order` is a permutation of `g`'s nodes consistent with
/// every edge of `g` (used by tests and the conformance checker).
pub fn is_topological_order<N>(g: &DiGraph<N>, order: &[NodeId]) -> bool {
    if order.len() != g.node_count() {
        return false;
    }
    let mut pos = vec![usize::MAX; g.node_count()];
    for (i, &v) in order.iter().enumerate() {
        if v.index() >= g.node_count() || pos[v.index()] != usize::MAX {
            return false;
        }
        pos[v.index()] = i;
    }
    g.edges().all(|(u, v)| pos[u.index()] < pos[v.index()])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_a_dag() {
        let g = DiGraph::from_edges(vec![(); 5], [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]);
        let order = topological_sort(&g).unwrap();
        assert!(is_topological_order(&g, &order));
        assert_eq!(order[0], NodeId::new(0));
        assert_eq!(order[4], NodeId::new(4));
    }

    #[test]
    fn detects_cycles() {
        let g = DiGraph::from_edges(vec![(); 3], [(0, 1), (1, 2), (2, 0)]);
        assert!(matches!(
            topological_sort(&g),
            Err(GraphError::CycleDetected { .. })
        ));
        assert!(!is_acyclic(&g));
    }

    #[test]
    fn detects_self_loop() {
        let g = DiGraph::from_edges(vec![(); 2], [(0, 0), (0, 1)]);
        assert!(!is_acyclic(&g));
    }

    #[test]
    fn empty_and_singleton() {
        let g: DiGraph<()> = DiGraph::new();
        assert_eq!(topological_sort(&g).unwrap(), vec![]);
        let g = DiGraph::from_edges(vec![()], std::iter::empty());
        assert_eq!(topological_sort(&g).unwrap(), vec![NodeId::new(0)]);
    }

    #[test]
    fn disconnected_components_all_appear() {
        let g = DiGraph::from_edges(vec![(); 4], [(0, 1), (2, 3)]);
        let order = topological_sort(&g).unwrap();
        assert_eq!(order.len(), 4);
        assert!(is_topological_order(&g, &order));
    }

    #[test]
    fn rejects_bad_orders() {
        let g = DiGraph::from_edges(vec![(); 3], [(0, 1), (1, 2)]);
        // Wrong direction.
        assert!(!is_topological_order(
            &g,
            &[NodeId::new(2), NodeId::new(1), NodeId::new(0)]
        ));
        // Wrong length.
        assert!(!is_topological_order(&g, &[NodeId::new(0)]));
        // Duplicate entry.
        assert!(!is_topological_order(
            &g,
            &[NodeId::new(0), NodeId::new(0), NodeId::new(2)]
        ));
    }
}
