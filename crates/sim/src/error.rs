//! Error type for process-model construction and simulation.

use std::fmt;

/// Errors from building or simulating process models.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// The model has no activities.
    NoActivities,
    /// An edge references an activity that was never declared.
    UnknownActivity {
        /// The unknown name.
        name: String,
    },
    /// The same activity was declared twice.
    DuplicateActivity {
        /// The duplicated name.
        name: String,
    },
    /// An edge was declared twice.
    DuplicateEdge {
        /// Source activity name.
        from: String,
        /// Target activity name.
        to: String,
    },
    /// A self-loop edge was declared (not supported by the engine).
    SelfLoop {
        /// The activity.
        name: String,
    },
    /// The model does not have exactly one source (initiating activity).
    BadSources {
        /// Names of in-degree-0 activities found.
        found: Vec<String>,
    },
    /// The model does not have exactly one sink (terminating activity).
    BadSinks {
        /// Names of out-degree-0 activities found.
        found: Vec<String>,
    },
    /// The engine requires an acyclic model, but the graph has a cycle.
    NotAcyclic,
    /// An edge condition reads more output components than the source
    /// activity produces.
    ConditionArity {
        /// Source activity name.
        from: String,
        /// Target activity name.
        to: String,
        /// Components the condition reads.
        needs: usize,
        /// Components the activity produces.
        produces: usize,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::NoActivities => write!(f, "process model has no activities"),
            ModelError::UnknownActivity { name } => write!(f, "unknown activity `{name}`"),
            ModelError::DuplicateActivity { name } => write!(f, "duplicate activity `{name}`"),
            ModelError::DuplicateEdge { from, to } => write!(f, "duplicate edge `{from}` -> `{to}`"),
            ModelError::SelfLoop { name } => write!(f, "self-loop on `{name}` is not supported"),
            ModelError::BadSources { found } => write!(
                f,
                "process model must have exactly one initiating activity, found {found:?}"
            ),
            ModelError::BadSinks { found } => write!(
                f,
                "process model must have exactly one terminating activity, found {found:?}"
            ),
            ModelError::NotAcyclic => write!(f, "the execution engine requires an acyclic model"),
            ModelError::ConditionArity { from, to, needs, produces } => write!(
                f,
                "condition on `{from}` -> `{to}` reads {needs} output components but `{from}` produces {produces}"
            ),
        }
    }
}

impl std::error::Error for ModelError {}
