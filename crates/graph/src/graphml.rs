//! GraphML export.
//!
//! DOT covers Graphviz; GraphML is the XML interchange the graph-tool
//! ecosystem (yEd, Gephi, NetworkX) reads. Node labels are emitted as a
//! declared `label` data key; optional edge weights (e.g. the miners'
//! support counts) as a `weight` key.

use crate::{DiGraph, NodeId};
use std::fmt::Write as _;

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

/// Renders `g` as GraphML, labelling nodes via `label` and optionally
/// weighting edges via `weight`.
pub fn to_graphml_with<N>(
    g: &DiGraph<N>,
    graph_id: &str,
    mut label: impl FnMut(NodeId, &N) -> String,
    mut weight: impl FnMut(NodeId, NodeId) -> Option<f64>,
) -> String {
    let mut out = String::new();
    out.push_str(r#"<?xml version="1.0" encoding="UTF-8"?>"#);
    out.push('\n');
    out.push_str(r#"<graphml xmlns="http://graphml.graphdrawing.org/xmlns">"#);
    out.push('\n');
    out.push_str(r#"  <key id="label" for="node" attr.name="label" attr.type="string"/>"#);
    out.push('\n');
    out.push_str(r#"  <key id="weight" for="edge" attr.name="weight" attr.type="double"/>"#);
    out.push('\n');
    let _ = writeln!(
        out,
        r#"  <graph id="{}" edgedefault="directed">"#,
        escape(graph_id)
    );
    for (id, payload) in g.nodes() {
        let _ = writeln!(
            out,
            r#"    <node id="n{}"><data key="label">{}</data></node>"#,
            id.index(),
            escape(&label(id, payload))
        );
    }
    for (i, (u, v)) in g.edges().enumerate() {
        match weight(u, v) {
            Some(w) => {
                let _ = writeln!(
                    out,
                    r#"    <edge id="e{i}" source="n{}" target="n{}"><data key="weight">{w}</data></edge>"#,
                    u.index(),
                    v.index()
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    r#"    <edge id="e{i}" source="n{}" target="n{}"/>"#,
                    u.index(),
                    v.index()
                );
            }
        }
    }
    out.push_str("  </graph>\n</graphml>\n");
    out
}

/// Renders `g` as GraphML using the payload's `Display` as the label
/// and no edge weights.
pub fn to_graphml<N: std::fmt::Display>(g: &DiGraph<N>, graph_id: &str) -> String {
    to_graphml_with(g, graph_id, |_, p| p.to_string(), |_, _| None)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_structure() {
        let g = DiGraph::from_edges(vec!["A", "B & C"], [(0, 1)]);
        let xml = to_graphml(&g, "p<1>");
        assert!(xml.starts_with(r#"<?xml version="1.0""#));
        assert!(xml.contains(r#"<graph id="p&lt;1&gt;" edgedefault="directed">"#));
        assert!(xml.contains(r#"<node id="n0"><data key="label">A</data></node>"#));
        assert!(xml.contains("B &amp; C"));
        assert!(xml.contains(r#"<edge id="e0" source="n0" target="n1"/>"#));
        assert!(xml.trim_end().ends_with("</graphml>"));
    }

    #[test]
    fn weights_emitted_when_given() {
        let g = DiGraph::from_edges(vec![(); 3], [(0, 1), (1, 2)]);
        let xml = to_graphml_with(
            &g,
            "w",
            |id, _| format!("t{}", id.index()),
            |u, _| if u.index() == 0 { Some(2.5) } else { None },
        );
        assert!(xml.contains(r#"<data key="weight">2.5</data>"#));
        assert!(xml.contains(r#"<edge id="e1" source="n1" target="n2"/>"#));
    }

    #[test]
    fn empty_graph_is_valid() {
        let g: DiGraph<&str> = DiGraph::new();
        let xml = to_graphml(&g, "empty");
        assert!(xml.contains(r#"<graph id="empty""#));
        assert!(!xml.contains("<node"));
    }
}
