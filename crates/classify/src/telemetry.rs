//! Telemetry for conditions mining, on the same
//! [`MetricsSink`] machinery as the miner and conformance layers: the
//! session-based entry points are generic over
//! `S: MetricsSink<ClassifyMetrics>`, and with
//! [`NullSink`](procmine_core::NullSink) every guard is `if false` and
//! the instrumentation compiles to nothing.

use procmine_core::MetricsSink;
use std::fmt;

/// Counters and timers collected by one conditions-mining run (see
/// [`learn_edge_conditions_in`]): edges visited, training rows
/// extracted, candidate splits evaluated while growing trees, the
/// deepest tree fitted, and total learn time. Fields accumulate.
///
/// [`learn_edge_conditions_in`]: crate::learn_edge_conditions_in
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ClassifyMetrics {
    /// Model edges a condition was learned (or counted) for.
    pub edges_considered: u64,
    /// Edges with no recorded outputs, falling back to co-occurrence
    /// support.
    pub edges_without_outputs: u64,
    /// Training rows extracted across all edge datasets.
    pub rows_extracted: u64,
    /// Candidate `(feature, threshold)` splits whose Gini gain was
    /// evaluated during tree growth.
    pub splits_evaluated: u64,
    /// Decision trees fitted.
    pub trees_fitted: u64,
    /// Depth of the deepest fitted tree (merge takes the max).
    pub max_tree_depth: u64,
    /// Nanoseconds spent learning end to end.
    pub learn_nanos: u64,
}

impl ClassifyMetrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        ClassifyMetrics::default()
    }

    /// Folds another metrics value into this one (counters add,
    /// `max_tree_depth` takes the max).
    pub fn merge(&mut self, other: &ClassifyMetrics) {
        self.edges_considered += other.edges_considered;
        self.edges_without_outputs += other.edges_without_outputs;
        self.rows_extracted += other.rows_extracted;
        self.splits_evaluated += other.splits_evaluated;
        self.trees_fitted += other.trees_fitted;
        self.max_tree_depth = self.max_tree_depth.max(other.max_tree_depth);
        self.learn_nanos += other.learn_nanos;
    }

    /// The counters as `(name, value)` pairs in the stable reporting
    /// order used by [`to_json`](Self::to_json).
    pub fn counters(&self) -> [(&'static str, u64); 6] {
        [
            ("edges_considered", self.edges_considered),
            ("edges_without_outputs", self.edges_without_outputs),
            ("rows_extracted", self.rows_extracted),
            ("splits_evaluated", self.splits_evaluated),
            ("trees_fitted", self.trees_fitted),
            ("max_tree_depth", self.max_tree_depth),
        ]
    }

    /// The timers as `(name, nanos)` pairs in reporting order.
    pub fn timers(&self) -> [(&'static str, u64); 1] {
        [("learn", self.learn_nanos)]
    }

    /// Writes the JSON fields `"counters":{…},"timers_ns":{…}` (no
    /// surrounding braces) so callers can splice sibling fields.
    pub fn write_json_fields(&self, out: &mut String) {
        write_json_object(out, "counters", &self.counters());
        out.push(',');
        write_json_object(out, "timers_ns", &self.timers());
    }

    /// Machine-readable JSON report with a stable key order.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        self.write_json_fields(&mut out);
        out.push('}');
        out
    }

    /// Human-readable two-column table of timers and counters.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str("classify timer                time\n");
        for (name, nanos) in self.timers() {
            out.push_str(&format!("  {name:<26}  {}\n", format_nanos(nanos)));
        }
        out.push_str("classify counter              value\n");
        for (name, value) in self.counters() {
            out.push_str(&format!("  {name:<26}  {value}\n"));
        }
        out
    }
}

impl fmt::Display for ClassifyMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_table())
    }
}

impl MetricsSink<ClassifyMetrics> for ClassifyMetrics {
    const ENABLED: bool = true;

    fn record(&mut self, update: impl FnOnce(&mut ClassifyMetrics)) {
        update(self);
    }
}

fn write_json_object(out: &mut String, name: &str, pairs: &[(&'static str, u64)]) {
    out.push('"');
    out.push_str(name);
    out.push_str("\":{");
    for (i, (key, value)) in pairs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(key);
        out.push_str("\":");
        out.push_str(&value.to_string());
    }
    out.push('}');
}

fn format_nanos(nanos: u64) -> String {
    let ns = nanos as f64;
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.1} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.1} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use procmine_core::NullSink;

    fn sample() -> ClassifyMetrics {
        ClassifyMetrics {
            edges_considered: 1,
            edges_without_outputs: 2,
            rows_extracted: 3,
            splits_evaluated: 4,
            trees_fitted: 5,
            max_tree_depth: 6,
            learn_nanos: 7,
        }
    }

    #[test]
    fn json_schema_is_locked() {
        assert_eq!(
            sample().to_json(),
            concat!(
                "{\"counters\":{\"edges_considered\":1,\"edges_without_outputs\":2,",
                "\"rows_extracted\":3,\"splits_evaluated\":4,\"trees_fitted\":5,",
                "\"max_tree_depth\":6},\"timers_ns\":{\"learn\":7}}"
            )
        );
    }

    #[test]
    fn merge_adds_counters_and_maxes_depth() {
        let mut a = sample();
        let mut b = sample();
        b.max_tree_depth = 2;
        a.merge(&b);
        assert_eq!(a.edges_considered, 2);
        assert_eq!(a.rows_extracted, 6);
        assert_eq!(a.splits_evaluated, 8);
        assert_eq!(a.learn_nanos, 14);
        assert_eq!(a.max_tree_depth, 6, "depth merges by max, not sum");
    }

    #[test]
    fn table_lists_all_keys() {
        let table = sample().render_table();
        for (name, _) in sample().counters() {
            assert!(table.contains(name), "missing counter {name}");
        }
        assert!(table.contains("learn"));
    }

    #[test]
    fn null_sink_is_disabled_for_classify_metrics() {
        const _: () = assert!(!<NullSink as MetricsSink<ClassifyMetrics>>::ENABLED);
        const _: () = assert!(<ClassifyMetrics as MetricsSink<ClassifyMetrics>>::ENABLED);
        let mut sink = NullSink;
        MetricsSink::<ClassifyMetrics>::record(&mut sink, |m: &mut ClassifyMetrics| {
            m.trees_fitted += 1
        });
    }
}
