//! Raw event records — the paper's Definition 2 log schema.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The type of a logged event: an activity starting or ending.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EventKind {
    /// The activity started.
    Start,
    /// The activity terminated; the record carries the activity output.
    End,
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            EventKind::Start => "START",
            EventKind::End => "END",
        })
    }
}

impl std::str::FromStr for EventKind {
    type Err = ();

    fn from_str(s: &str) -> Result<Self, ()> {
        match s {
            "START" | "start" | "Start" => Ok(EventKind::Start),
            "END" | "end" | "End" => Ok(EventKind::End),
            _ => Err(()),
        }
    }
}

/// One record of the execution log: `(P, A, E, T, O)` — Definition 2.
///
/// `P` is the process-execution name (case identifier), `A` the activity
/// name, `E` the event type, `T` the timestamp, and `O` the output
/// vector of the activity (present only on `END` events; the paper's
/// null vector is represented as `None`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventRecord {
    /// Process-execution (case) name.
    pub process: String,
    /// Activity name.
    pub activity: String,
    /// START or END.
    pub kind: EventKind,
    /// Event timestamp. Any monotone clock; the algorithms only compare
    /// timestamps within one execution.
    pub time: u64,
    /// Output vector `o(A) ∈ N^k`, present on END events.
    pub output: Option<Vec<i64>>,
}

impl EventRecord {
    /// Convenience constructor for a START event.
    pub fn start(process: impl Into<String>, activity: impl Into<String>, time: u64) -> Self {
        EventRecord {
            process: process.into(),
            activity: activity.into(),
            kind: EventKind::Start,
            time,
            output: None,
        }
    }

    /// Convenience constructor for an END event.
    pub fn end(
        process: impl Into<String>,
        activity: impl Into<String>,
        time: u64,
        output: Option<Vec<i64>>,
    ) -> Self {
        EventRecord {
            process: process.into(),
            activity: activity.into(),
            kind: EventKind::End,
            time,
            output,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_round_trips_through_strings() {
        for (s, k) in [("START", EventKind::Start), ("END", EventKind::End)] {
            assert_eq!(s.parse::<EventKind>().unwrap(), k);
            assert_eq!(k.to_string(), s);
        }
        assert!("BEGIN".parse::<EventKind>().is_err());
        assert_eq!("start".parse::<EventKind>().unwrap(), EventKind::Start);
    }

    #[test]
    fn constructors() {
        let s = EventRecord::start("p1", "A", 5);
        assert_eq!(s.kind, EventKind::Start);
        assert_eq!(s.output, None);
        let e = EventRecord::end("p1", "A", 9, Some(vec![1, 2]));
        assert_eq!(e.kind, EventKind::End);
        assert_eq!(e.output.as_deref(), Some(&[1i64, 2][..]));
    }
}
