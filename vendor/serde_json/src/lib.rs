//! A minimal, std-only stand-in for
//! [`serde_json`](https://crates.io/crates/serde_json), vendored because
//! this build environment has no registry access.
//!
//! Serializes the vendored `serde`'s [`Value`] tree to JSON text and
//! parses JSON text back, covering the workspace's API surface:
//! [`to_string`], [`to_string_pretty`], [`to_writer`],
//! [`to_writer_pretty`], [`from_str`], [`from_reader`] and [`Error`].

#![forbid(unsafe_code)]

use serde::{DeError, Deserialize, Serialize};
use std::fmt;
use std::io;

pub use serde::Value;

/// Errors from serialization, deserialization, or the underlying I/O.
#[derive(Debug)]
pub struct Error {
    kind: ErrorKind,
}

#[derive(Debug)]
enum ErrorKind {
    Io(io::Error),
    Msg(String),
}

impl Error {
    fn msg(m: impl Into<String>) -> Self {
        Error {
            kind: ErrorKind::Msg(m.into()),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ErrorKind::Io(e) => write!(f, "{e}"),
            ErrorKind::Msg(m) => f.write_str(m),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match &self.kind {
            ErrorKind::Io(e) => Some(e),
            ErrorKind::Msg(_) => None,
        }
    }
}

impl From<io::Error> for Error {
    fn from(e: io::Error) -> Self {
        Error {
            kind: ErrorKind::Io(e),
        }
    }
}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::msg(e.to_string())
    }
}

// ---------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Renders a map key: strings directly, anything else as its compact
/// JSON enclosed in a string (real serde_json rejects non-string keys;
/// nothing in this workspace round-trips one through JSON text).
fn write_key(out: &mut String, key: &Value) -> Result<(), Error> {
    match key {
        Value::Str(s) => {
            write_escaped(out, s);
            Ok(())
        }
        other => {
            let mut inner = String::new();
            write_value(&mut inner, other, None, 0)?;
            write_escaped(out, &inner);
            Ok(())
        }
    }
}

fn write_f64(out: &mut String, x: f64) -> Result<(), Error> {
    if !x.is_finite() {
        return Err(Error::msg("cannot serialize non-finite float"));
    }
    let s = format!("{x}");
    out.push_str(&s);
    // Keep the token a float on re-parse, like serde_json's "2.0".
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
    Ok(())
}

/// `indent = None` → compact; `Some(step)` → pretty with two-space
/// indentation, `level` deep.
fn write_value(
    out: &mut String,
    v: &Value,
    indent: Option<usize>,
    level: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => write_f64(out, *x)?,
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(step) = indent {
                    out.push('\n');
                    out.push_str(&" ".repeat(step * (level + 1)));
                }
                write_value(out, item, indent, level + 1)?;
            }
            if let Some(step) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(step * level));
            }
            out.push(']');
        }
        Value::Map(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(step) = indent {
                    out.push('\n');
                    out.push_str(&" ".repeat(step * (level + 1)));
                }
                write_key(out, k)?;
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, level + 1)?;
            }
            if let Some(step) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(step * level));
            }
            out.push('}');
        }
    }
    Ok(())
}

/// Serializes to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serializes to a pretty JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

/// Serializes compact JSON into a writer.
pub fn to_writer<W: io::Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    writer.write_all(to_string(value)?.as_bytes())?;
    Ok(())
}

/// Serializes pretty JSON into a writer.
pub fn to_writer_pretty<W: io::Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    writer.write_all(to_string_pretty(value)?.as_bytes())?;
    Ok(())
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> Error {
        Error::msg(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.expect_keyword("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.expect_keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.expect_keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.eat(b'{', "expected '{'")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            let value = self.parse_value()?;
            pairs.push((Value::Str(key), value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u16, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let n = u16::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(n)
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::msg("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.parse_hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // surrogate pair: expect \uXXXX low half
                                self.eat(b'\\', "expected low surrogate")?;
                                self.eat(b'u', "expected low surrogate")?;
                                let lo = self.parse_hex4()?;
                                let combined = 0x10000
                                    + (((hi as u32) - 0xd800) << 10)
                                    + ((lo as u32) - 0xdc00);
                                char::from_u32(combined)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi as u32)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if !is_float {
            if let Some(rest) = text.strip_prefix('-') {
                if let Ok(n) = rest.parse::<u64>() {
                    if let Ok(i) = i64::try_from(n) {
                        return Ok(Value::I64(-i));
                    }
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }

    fn parse_document(&mut self) -> Result<Value, Error> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing characters"));
        }
        Ok(v)
    }
}

/// Deserializes a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = Parser::new(s).parse_document()?;
    Ok(T::from_value(value)?)
}

/// Deserializes a value from a JSON reader.
pub fn from_reader<R: io::Read, T: Deserialize>(mut reader: R) -> Result<T, Error> {
    let mut buf = String::new();
    reader.read_to_string(&mut buf)?;
    from_str(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(from_str::<bool>("true").unwrap(), true);
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string("x\"y").unwrap(), "\"x\\\"y\"");
    }

    #[test]
    fn containers_round_trip() {
        let v: Vec<u32> = from_str("[1, 2, 3]").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        assert_eq!(to_string(&v).unwrap(), "[1,2,3]");
        let pairs: Vec<(u32, i64)> = from_str("[[1,-2],[3,4]]").unwrap();
        assert_eq!(pairs, vec![(1, -2), (3, 4)]);
    }

    #[test]
    fn floats_keep_a_float_token() {
        let s = to_string(&2.0f64).unwrap();
        assert_eq!(s, "2.0");
        let tiny = to_string(&1e-9f64).unwrap();
        let back: f64 = from_str(&tiny).unwrap();
        assert_eq!(back, 1e-9);
    }

    #[test]
    fn pretty_shape() {
        let v: Vec<u32> = vec![1, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<u64>("42 junk").is_err());
        assert!(from_str::<u64>("").is_err());
    }
}
