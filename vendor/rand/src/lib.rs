//! A minimal, std-only stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate, vendored because this build environment has no registry access.
//!
//! Only the API surface procmine uses is provided: [`RngCore`], [`Rng`]
//! (`gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`] and [`seq::SliceRandom::shuffle`].
//!
//! **Bit-compatibility:** `StdRng` reproduces rand 0.8's `StdRng`
//! exactly — a ChaCha12 block cipher stream seeded via `rand_core`'s
//! PCG32-based `seed_from_u64`, with Lemire widening-multiply range
//! sampling and the 2⁶⁴-scaled Bernoulli. Checked-in golden files that
//! were generated with the real crate therefore keep their byte-exact
//! outputs under this stand-in.

#![forbid(unsafe_code)]

pub mod distributions;
pub mod rngs;
pub mod seq;

mod chacha;

/// The core of a random number generator: raw word output.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A random number generator seedable from a fixed-size byte seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with the same
    /// PCG32 stream rand_core 0.6 uses, so streams match the real crate.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// User-facing generator methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution.
    #[inline]
    fn gen<T>(&mut self) -> T
    where
        T: distributions::StandardSample,
    {
        T::sample_standard(self)
    }

    /// Samples a value uniformly from the given range (`a..b` or
    /// `a..=b`). Panics on an empty range.
    #[inline]
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`. Panics unless `0 ≤ p ≤ 1`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        distributions::Bernoulli::new(p)
            .expect("gen_bool: probability out of range")
            .sample(self)
    }

    /// Samples from an explicit distribution object.
    #[inline]
    fn sample<T, D: distributions::Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample_dist(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod prelude {
    //! Convenience re-exports.
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}
