//! Algorithm 1 (Special DAG): acyclic processes whose executions contain
//! every activity exactly once.
//!
//! In this setting the paper proves (Theorem 4) that the mined graph is
//! the *unique minimal* conformal graph:
//!
//! 1. for each execution and each pair `u, v` with `u` terminating
//!    before `v` starts, add edge `(u, v)`;
//! 2. remove edges that appear in both directions (such activities were
//!    observed in both orders, hence are independent);
//! 3. take the transitive reduction (Appendix A).
//!
//! Complexity O(n²m): step 1 dominates since `m ≫ n`.

use crate::limits::Deadline;
use crate::model::graph_skeleton;
use crate::session::{run_stage, MineSession};
use crate::telemetry::{MetricsSink, Stage};
use crate::trace::Tracer;
use crate::{MineError, MinedModel, MinerOptions};
use procmine_graph::reduction::{
    transitive_reduction_matrix_budgeted, transitive_reduction_matrix_parallel_budgeted,
};
use procmine_graph::{AdjMatrix, GraphError, NodeId};
use procmine_log::WorkflowLog;

/// Mines the unique minimal conformal graph of a log in which every
/// activity appears in every execution exactly once (Algorithm 1).
///
/// Errors:
/// * [`MineError::EmptyLog`] — no executions;
/// * [`MineError::RepeatsRequireCyclicMiner`] — some activity repeats
///   within an execution;
/// * [`MineError::SpecialPreconditionViolated`] — some execution lacks
///   an activity (use [`crate::mine_general_dag`]);
/// * [`MineError::UnexpectedCycle`] — the ordering graph retained a long
///   cycle after two-cycle removal. This cannot happen for instantaneous
///   (totally ordered) executions, but interval logs with partial
///   overlaps can produce one; the general miner handles those.
pub fn mine_special_dag(
    log: &WorkflowLog,
    options: &MinerOptions,
) -> Result<MinedModel, MineError> {
    mine_special_dag_in(&mut MineSession::new(), log, options)
}

/// [`mine_special_dag`] inside a [`MineSession`]: stage timings and
/// counters are recorded into the session's sink, spans into its
/// tracer. Algorithm 1 lowers while counting, so [`Stage::Lower`] stays
/// zero and its global transitive reduction is timed as
/// [`Stage::Reduce`]; with `threads > 1` and a large activity universe
/// the reduction runs row-parallel.
pub fn mine_special_dag_in<S: MetricsSink>(
    session: &mut MineSession<S>,
    log: &WorkflowLog,
    options: &MinerOptions,
) -> Result<MinedModel, MineError> {
    let deadline = session.run_deadline(&options.limits);
    let threads = session.threads;
    let MineSession {
        sink,
        tracer,
        obs: reg,
        limits,
        ..
    } = session;
    let tracer: &Tracer = tracer;
    let reg: &crate::obs::Registry = reg;
    let _root = tracer.span_cat("mine.special", "miner");
    if log.is_empty() {
        return Err(MineError::EmptyLog);
    }
    limits.check_log(log)?;
    options.limits.check_log(log)?;
    let n = log.activities().len();
    for exec in log.executions() {
        deadline.check()?;
        if exec.has_repeats() {
            return Err(MineError::RepeatsRequireCyclicMiner {
                execution: exec.id.clone(),
            });
        }
        if exec.len() != n {
            return Err(MineError::SpecialPreconditionViolated {
                execution: exec.id.clone(),
            });
        }
    }

    // Step 2: count observed orderings and overlaps. Each activity
    // occurs once per execution, so each execution contributes at most
    // 1 per pair. An overlap is independence evidence (§2) and prunes
    // the pair like a two-cycle.
    let obs = run_stage(Stage::CountPairs, deadline, sink, tracer, reg, |sink, _| {
        let mut obs = crate::general_dag::OrderObservations::new(n);
        // Columnar scratch reused across executions: Algorithm 1 lowers
        // while counting, so one execution's columns live here at a
        // time.
        let mut verts: Vec<u32> = Vec::with_capacity(n);
        let mut starts: Vec<u64> = Vec::with_capacity(n);
        let mut ends: Vec<u64> = Vec::with_capacity(n);
        for exec in log.executions() {
            deadline.check()?;
            verts.clear();
            starts.clear();
            ends.clear();
            for i in exec.instances() {
                verts.push(i.activity.index() as u32);
                starts.push(i.start);
                ends.push(i.end);
            }
            let cols = procmine_log::ExecColumns {
                activities: &verts,
                starts: &starts,
                ends: &ends,
            };
            crate::general_dag::count_one_execution(n, cols, &mut obs);
        }
        if S::ENABLED {
            let scanned = log.len() as u64;
            // Every execution contains all n activities exactly once.
            let pairs = scanned * (n as u64 * (n as u64).saturating_sub(1) / 2);
            sink.record(|m| {
                m.executions_scanned += scanned;
                m.pairs_counted += pairs;
            });
        }
        Ok(obs)
    })?;
    let counts = obs.ordered.clone();

    // Threshold (T = 1 keeps everything) and step 3: drop two-cycles.
    let m = run_stage(Stage::Prune, deadline, sink, tracer, reg, |sink, _| {
        if S::ENABLED {
            let before = (0..n * n)
                .filter(|&i| i / n != i % n && obs.ordered[i] > 0)
                .count() as u64;
            sink.record(|m| m.edges_before_threshold += before);
        }
        let mut m = AdjMatrix::new(n);
        for u in 0..n {
            deadline.check()?;
            for v in 0..n {
                if u != v
                    && obs.ordered[u * n + v] >= options.noise_threshold
                    && obs.overlap[u * n + v] < options.noise_threshold
                {
                    m.add_edge(u, v);
                }
            }
        }
        let thresholded = m.edge_count();
        m.remove_two_cycles();
        if S::ENABLED {
            let dissolved = ((thresholded - m.edge_count()) / 2) as u64;
            sink.record(|met| {
                met.edges_after_threshold += thresholded as u64;
                met.two_cycles_dissolved += dissolved;
            });
        }
        Ok(m)
    })?;

    // Step 4: transitive reduction (unique for a DAG), under the
    // deadline's wall-clock budget; row-parallel for large graphs in a
    // multi-threaded session.
    let reduced = run_stage(Stage::Reduce, deadline, sink, tracer, reg, |sink, _| {
        let budget = deadline.budget();
        let reduced = if threads > 1 && n >= crate::parallel::parallel_graph_min_vertices() {
            transitive_reduction_matrix_parallel_budgeted(&m, threads, &budget)
        } else {
            transitive_reduction_matrix_budgeted(&m, &budget)
        }
        .map_err(|e| match e {
            GraphError::BudgetExhausted => Deadline::exceeded_in("transitive reduction"),
            _ => MineError::UnexpectedCycle,
        })?;
        if S::ENABLED {
            let dropped = (m.edge_count() - reduced.edge_count()) as u64;
            let final_edges = reduced.edge_count() as u64;
            sink.record(|met| {
                met.edges_dropped_by_reduction += dropped;
                met.edges_final += final_edges;
            });
        }
        Ok(reduced)
    })?;

    run_stage(Stage::Assemble, deadline, sink, tracer, reg, |_, _| {
        let mut graph = graph_skeleton(log.activities());
        let mut support = Vec::with_capacity(reduced.edge_count());
        for (u, v) in reduced.edges() {
            graph.add_edge(NodeId::new(u), NodeId::new(v));
            support.push((u, v, counts[u * n + v]));
        }
        Ok(MinedModel::new(graph, support))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MinerOptions;

    fn mine(strings: &[&str]) -> MinedModel {
        let log = WorkflowLog::from_strings(strings.iter().copied()).unwrap();
        mine_special_dag(&log, &MinerOptions::default()).unwrap()
    }

    #[test]
    fn paper_example_6() {
        // Log {ABCDE, ACDBE, ACBDE}: B is seen both before and after C
        // and both before and after D, so B is independent of both; the
        // chain A→C→D→E survives with B parallel between A and E
        // (Figure 3 after two-cycle removal and transitive reduction).
        let model = mine(&["ABCDE", "ACDBE", "ACBDE"]);
        let mut edges = model.edges_named();
        edges.sort();
        assert_eq!(
            edges,
            vec![("A", "B"), ("A", "C"), ("B", "E"), ("C", "D"), ("D", "E")]
        );
    }

    #[test]
    fn single_execution_yields_chain() {
        let model = mine(&["ABCDE"]);
        assert_eq!(
            model.edges_named(),
            vec![("A", "B"), ("B", "C"), ("C", "D"), ("D", "E")]
        );
    }

    #[test]
    fn paper_figure_1_recovered_from_its_interleavings() {
        // Figure 1 graph: A→B, A→C, B→E, C→D, C→E(redundant via D? no:
        // C→E is a real edge), D→E. B is parallel to C and D. Executions
        // that contain all activities: interleavings of B with C,D.
        let model = mine(&["ABCDE", "ACBDE", "ACDBE"]);
        // B independent of C and D; the chain A→C→D→E and A→B→E remain.
        assert!(model.has_edge("A", "B") && model.has_edge("A", "C"));
        assert!(model.has_edge("C", "D"));
        assert!(model.has_edge("B", "E") && model.has_edge("D", "E"));
        assert!(!model.has_edge("B", "C") && !model.has_edge("C", "B"));
        assert!(!model.has_edge("B", "D") && !model.has_edge("D", "B"));
        // Note: the redundant C→E direct edge of Figure 1 is not
        // recoverable from full executions — the minimal graph omits it.
        assert!(!model.has_edge("C", "E"));
    }

    #[test]
    fn parallel_activities_produce_no_edges() {
        let model = mine(&["AB", "BA"]);
        assert_eq!(model.edge_count(), 0);
    }

    #[test]
    fn empty_log_rejected() {
        let log = WorkflowLog::new();
        assert_eq!(
            mine_special_dag(&log, &MinerOptions::default()).unwrap_err(),
            MineError::EmptyLog
        );
    }

    #[test]
    fn missing_activity_rejected() {
        let log = WorkflowLog::from_strings(["ABC", "AB"]).unwrap();
        assert!(matches!(
            mine_special_dag(&log, &MinerOptions::default()),
            Err(MineError::SpecialPreconditionViolated { .. })
        ));
    }

    #[test]
    fn repeats_rejected() {
        let log = WorkflowLog::from_strings(["ABA"]).unwrap();
        assert!(matches!(
            mine_special_dag(&log, &MinerOptions::default()),
            Err(MineError::RepeatsRequireCyclicMiner { .. })
        ));
    }

    #[test]
    fn threaded_session_matches_serial() {
        let strings = ["ABCDE", "ACDBE", "ACBDE"];
        let log = WorkflowLog::from_strings(strings).unwrap();
        let serial = mine_special_dag(&log, &MinerOptions::default()).unwrap();
        let mut session = MineSession::new().with_threads(4);
        let threaded = mine_special_dag_in(&mut session, &log, &MinerOptions::default()).unwrap();
        assert_eq!(serial.edges_named(), threaded.edges_named());
    }

    #[test]
    fn noise_threshold_drops_rare_orderings() {
        // 8 copies of ABC and 1 of ACB: with T=2 the B,C order conflict
        // resolves in favour of B→C … but wait, ACB also orders A first,
        // so A edges survive easily. B→C seen 8×, C→B seen 1×: T=2 drops
        // C→B, keeping the chain.
        let mut strings = vec!["ABC"; 8];
        strings.push("ACB");
        let log = WorkflowLog::from_strings(strings).unwrap();
        let model = mine_special_dag(&log, &MinerOptions::with_threshold(2)).unwrap();
        assert_eq!(model.edges_named(), vec![("A", "B"), ("B", "C")]);

        // Without the threshold, B and C are declared independent.
        let model = mine_special_dag(&log, &MinerOptions::default()).unwrap();
        assert!(!model.has_edge("B", "C") && !model.has_edge("C", "B"));
    }

    #[test]
    fn edge_support_reports_counts() {
        let model = mine(&["ABC", "ABC", "ABC"]);
        for &(_, _, c) in model.edge_support() {
            assert_eq!(c, 3);
        }
    }
}
