//! Flowmark-style CSV event format.
//!
//! One event per line:
//!
//! ```text
//! process,activity,START|END,timestamp[,o1;o2;...]
//! ```
//!
//! The output field is present only on END events that recorded an
//! output vector (semicolon-separated integers). Blank lines and lines
//! starting with `#` are ignored. Field values may not contain commas;
//! this mirrors the flat audit-trail files the paper's implementation
//! consumed ("lists of event records consisting of the process name, the
//! activity name, the event type, and the timestamp", §8).

use super::{ByteLines, CodecStats, IngestReport, RecoveryPolicy};
use crate::validate::{assemble_executions_with, AssemblyPolicy};
use crate::{ActivityTable, EventKind, EventRecord, LogError, WorkflowLog};
use std::io::{BufRead, Write};

/// Parses a Flowmark-style event stream into raw records.
pub fn read_events<R: BufRead>(reader: R) -> Result<Vec<EventRecord>, LogError> {
    let mut records = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        records.push(parse_event_line(trimmed, lineno + 1)?);
    }
    Ok(records)
}

/// Parses a Flowmark-style event stream and assembles it into a
/// [`WorkflowLog`] (strict START/END pairing).
pub fn read_log<R: BufRead>(reader: R) -> Result<WorkflowLog, LogError> {
    read_log_with_stats(reader, &mut CodecStats::default())
}

/// [`read_log`] with telemetry: bytes consumed, event lines parsed, and
/// executions assembled accumulate into `stats`.
pub fn read_log_with_stats<R: BufRead>(
    reader: R,
    stats: &mut CodecStats,
) -> Result<WorkflowLog, LogError> {
    read_log_with(
        reader,
        RecoveryPolicy::Strict,
        stats,
        &mut IngestReport::default(),
    )
}

/// [`read_log_with_stats`] with a [`RecoveryPolicy`]: under `Strict`
/// the first bad line aborts (it is still recorded in `report`, with
/// its byte offset); under `Skip`/`BestEffort` bad lines are counted
/// and skipped and START/END pairing falls back to lenient assembly.
/// An unparsable final line with no trailing newline is reported as
/// [`LogError::UnexpectedEof`] — a truncated file, not a garbage line.
pub fn read_log_with<R: BufRead>(
    reader: R,
    policy: RecoveryPolicy,
    stats: &mut CodecStats,
    report: &mut IngestReport,
) -> Result<WorkflowLog, LogError> {
    let mut lines = ByteLines::new(reader);
    let result = collect_records(&mut lines, policy, report);
    stats.bytes_read += lines.bytes();
    let records = result?;
    stats.events_parsed += records.len() as u64;
    let log = if policy.is_strict() {
        WorkflowLog::from_events(&records).map_err(|e| {
            report.record_error(lines.bytes(), 0, e.to_string());
            e
        })?
    } else {
        let mut table = ActivityTable::new();
        let assembled = assemble_executions_with(&records, &mut table, AssemblyPolicy::Lenient)
            .map_err(|e| {
                report.record_error(lines.bytes(), 0, e.to_string());
                e
            })?;
        report.records_skipped += assembled.diagnostics.len() as u64;
        let mut log = WorkflowLog::with_activities(table);
        for exec in assembled.executions {
            log.push(exec);
        }
        log
    };
    stats.executions_parsed += log.len() as u64;
    Ok(log)
}

fn collect_records<R: BufRead>(
    lines: &mut ByteLines<R>,
    policy: RecoveryPolicy,
    report: &mut IngestReport,
) -> Result<Vec<EventRecord>, LogError> {
    let mut records = Vec::new();
    while let Some((offset, lineno, had_newline)) = lines.read_next()? {
        let raw = lines.line();
        let parsed = match std::str::from_utf8(raw) {
            Ok(text) => {
                let trimmed = text.trim();
                if trimmed.is_empty() || trimmed.starts_with('#') {
                    continue;
                }
                parse_event_line(trimmed, lineno)
            }
            Err(_) => Err(LogError::Parse {
                line: lineno,
                message: "line is not valid UTF-8".to_string(),
            }),
        };
        match parsed {
            Ok(record) => {
                report.records_parsed += 1;
                records.push(record);
            }
            Err(e) => {
                // A bad final line with no newline is a truncated tail.
                let err = if had_newline {
                    e
                } else {
                    LogError::UnexpectedEof {
                        byte_offset: offset,
                        message: format!("input ends mid-record ({e})"),
                    }
                };
                report.record_error(offset, lineno, err.to_string());
                if policy.is_strict() {
                    return Err(err);
                }
                report.records_skipped += 1;
                report.over_budget(policy)?;
            }
        }
    }
    Ok(records)
}

/// Writes a log as a Flowmark-style event stream. Instances are emitted
/// per execution in start-time order: a START line, then an END line.
/// Instantaneous instances (`start == end`) still emit both events, so
/// the format round-trips.
pub fn write_log<W: Write>(log: &WorkflowLog, mut writer: W) -> Result<(), LogError> {
    for exec in log.executions() {
        // Emit all events of the execution sorted by time (START before
        // END at equal timestamps so strict re-assembly succeeds).
        let mut events: Vec<EventRecord> = Vec::with_capacity(exec.len() * 2);
        for inst in exec.instances() {
            let name = log.activities().name(inst.activity);
            events.push(EventRecord::start(exec.id.clone(), name, inst.start));
            events.push(EventRecord::end(
                exec.id.clone(),
                name,
                inst.end,
                inst.output.clone(),
            ));
        }
        events.sort_by_key(|e| (e.time, matches!(e.kind, EventKind::End)));
        for e in events {
            write_line(&e, &mut writer)?;
        }
    }
    Ok(())
}

fn write_line<W: Write>(e: &EventRecord, writer: &mut W) -> Result<(), LogError> {
    check_field(&e.process)?;
    check_field(&e.activity)?;
    match &e.output {
        Some(o) => {
            let joined = o.iter().map(i64::to_string).collect::<Vec<_>>().join(";");
            writeln!(
                writer,
                "{},{},{},{},{}",
                e.process, e.activity, e.kind, e.time, joined
            )?;
        }
        None => writeln!(writer, "{},{},{},{}", e.process, e.activity, e.kind, e.time)?,
    }
    Ok(())
}

fn check_field(s: &str) -> Result<(), LogError> {
    if s.contains(',') || s.contains('\n') {
        return Err(LogError::Parse {
            line: 0,
            message: format!("field `{s}` contains a comma or newline and cannot be written"),
        });
    }
    Ok(())
}

/// Parses one Flowmark-style event line (1-based `lineno` for error
/// reporting). Used by the batch reader and the streaming reader.
pub fn parse_event_line(line: &str, lineno: usize) -> Result<EventRecord, LogError> {
    let parts: Vec<&str> = line.split(',').collect();
    if parts.len() < 4 || parts.len() > 5 {
        return Err(LogError::Parse {
            line: lineno,
            message: format!(
                "expected 4 or 5 comma-separated fields, got {}",
                parts.len()
            ),
        });
    }
    let kind: EventKind = parts[2].trim().parse().map_err(|()| LogError::Parse {
        line: lineno,
        message: format!("unknown event type `{}`", parts[2]),
    })?;
    let time: u64 = parts[3].trim().parse().map_err(|_| LogError::Parse {
        line: lineno,
        message: format!("invalid timestamp `{}`", parts[3]),
    })?;
    let output = if parts.len() == 5 {
        if kind == EventKind::Start {
            return Err(LogError::Parse {
                line: lineno,
                message: "START events cannot carry an output vector".to_string(),
            });
        }
        let vec: Result<Vec<i64>, _> = parts[4]
            .split(';')
            .map(|v| v.trim().parse::<i64>())
            .collect();
        Some(vec.map_err(|_| LogError::Parse {
            line: lineno,
            message: format!("invalid output vector `{}`", parts[4]),
        })?)
    } else {
        None
    };
    Ok(EventRecord {
        process: parts[0].trim().to_string(),
        activity: parts[1].trim().to_string(),
        kind,
        time,
        output,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# a comment
p1,A,START,0
p1,A,END,1,3;4

p1,B,START,2
p1,B,END,3
p2,A,START,0
p2,A,END,2
";

    #[test]
    fn parses_sample() {
        let log = read_log(SAMPLE.as_bytes()).unwrap();
        assert_eq!(log.len(), 2);
        assert_eq!(log.executions()[0].len(), 2);
        let a = log.activities().id("A").unwrap();
        assert_eq!(log.executions()[0].output_of(a), Some(&[3i64, 4][..]));
    }

    #[test]
    fn round_trip() {
        let log = read_log(SAMPLE.as_bytes()).unwrap();
        let mut buf = Vec::new();
        write_log(&log, &mut buf).unwrap();
        let back = read_log(buf.as_slice()).unwrap();
        assert_eq!(back.len(), log.len());
        assert_eq!(back.display_sequences(), log.display_sequences());
        let a = back.activities().id("A").unwrap();
        assert_eq!(back.executions()[0].output_of(a), Some(&[3i64, 4][..]));
    }

    #[test]
    fn instantaneous_sequences_round_trip() {
        let log = WorkflowLog::from_strings(["ABCE", "ACDE"]).unwrap();
        let mut buf = Vec::new();
        write_log(&log, &mut buf).unwrap();
        let back = read_log(buf.as_slice()).unwrap();
        assert_eq!(back.display_sequences(), log.display_sequences());
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(matches!(
            read_events("p1,A,START".as_bytes()),
            Err(LogError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            read_events("p1,A,BEGIN,0".as_bytes()),
            Err(LogError::Parse { .. })
        ));
        assert!(matches!(
            read_events("p1,A,START,abc".as_bytes()),
            Err(LogError::Parse { .. })
        ));
        assert!(matches!(
            read_events("p1,A,START,0,1;2".as_bytes()),
            Err(LogError::Parse { .. })
        ));
        assert!(matches!(
            read_events("p1,A,END,0,1;x".as_bytes()),
            Err(LogError::Parse { .. })
        ));
    }

    #[test]
    fn rejects_unwritable_fields() {
        let mut log = WorkflowLog::new();
        log.push_sequence(&["bad,name"]).unwrap();
        let mut buf = Vec::new();
        assert!(write_log(&log, &mut buf).is_err());
    }
}
