//! Integration tests of the tracing subsystem: span nesting invariants
//! across the mining pipeline, Chrome Trace Event export
//! well-formedness, per-worker lanes under parallel mining, and the
//! traced == untraced model guarantee.

use procmine::log::WorkflowLog;
use procmine::mine::conformance::check_conformance_in;
use procmine::mine::{
    mine_auto, mine_auto_in, mine_general_dag, mine_general_dag_in, MineSession, MinerOptions,
    SpanRecord, Tracer,
};
use proptest::prelude::*;
use serde_json::Value;

/// Example 6 of the paper plus enough repeats to chunk across workers.
fn example_log(copies: usize) -> WorkflowLog {
    let mut log = WorkflowLog::new();
    for _ in 0..copies {
        for seq in [
            ["A", "B", "C", "D", "E"],
            ["A", "C", "D", "B", "E"],
            ["A", "C", "B", "D", "E"],
        ] {
            log.push_sequence(&seq).unwrap();
        }
    }
    log
}

fn span<'a>(records: &'a [SpanRecord], name: &str) -> &'a SpanRecord {
    records
        .iter()
        .find(|r| r.name == name)
        .unwrap_or_else(|| panic!("span `{name}` missing from {records:?}"))
}

/// `inner` lies entirely within `outer`'s interval.
fn contains(outer: &SpanRecord, inner: &SpanRecord) -> bool {
    outer.start_ns <= inner.start_ns
        && outer.start_ns + outer.dur_ns >= inner.start_ns + inner.dur_ns
}

#[test]
fn general_mining_emits_nested_stage_spans() {
    let log = example_log(1);
    let tracer = Tracer::new();
    let mut session = MineSession::new().with_tracer(tracer.clone());
    mine_general_dag_in(&mut session, &log, &MinerOptions::default()).unwrap();

    let records = tracer.records();
    let root = span(&records, "mine.general");
    assert_eq!(root.cat, "miner");
    assert_eq!(root.tid, 0, "serial mining stays on the main lane");
    for stage in [
        "lower",
        "count_pairs",
        "prune",
        "transitive_reduction",
        "assemble",
    ] {
        let s = span(&records, stage);
        assert!(
            contains(root, s),
            "stage `{stage}` [{}, {}] escapes root [{}, {}]",
            s.start_ns,
            s.start_ns + s.dur_ns,
            root.start_ns,
            root.start_ns + root.dur_ns
        );
    }
    // Stages run in pipeline order: each starts no earlier than the
    // previous one.
    let starts: Vec<u64> = ["lower", "count_pairs", "prune", "transitive_reduction"]
        .iter()
        .map(|name| span(&records, name).start_ns)
        .collect();
    assert!(
        starts.windows(2).all(|w| w[0] <= w[1]),
        "stage starts not monotone: {starts:?}"
    );
}

#[test]
fn conformance_check_emits_spans() {
    let log = example_log(1);
    let model = mine_general_dag(&log, &MinerOptions::default()).unwrap();
    let tracer = Tracer::new();
    let mut session = MineSession::new().with_tracer(tracer.clone());
    check_conformance_in(&mut session, &model, &log);
    let records = tracer.records();
    let root = span(&records, "check_conformance");
    assert_eq!(root.cat, "conformance");
    for stage in ["closure", "dependency_checks", "execution_checks"] {
        assert!(contains(root, span(&records, stage)), "stage `{stage}`");
    }
}

#[test]
fn parallel_mining_records_per_worker_lanes() {
    let log = example_log(20); // 60 executions: plenty to chunk
    let tracer = Tracer::new();
    let mut session = MineSession::new()
        .with_tracer(tracer.clone())
        .with_threads(4);
    mine_general_dag_in(&mut session, &log, &MinerOptions::default()).unwrap();

    let records = tracer.records();
    let worker_spans: Vec<&SpanRecord> = records
        .iter()
        .filter(|r| r.name == "count_pairs.worker")
        .collect();
    assert!(
        worker_spans.len() >= 2,
        "expected several count_pairs workers, got {worker_spans:?}"
    );
    let mut tids: Vec<u32> = worker_spans.iter().map(|r| r.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    assert!(tids.len() >= 2, "workers share a lane: {tids:?}");
    assert!(
        tids.iter().all(|&t| t >= 1),
        "worker lanes must not collide with the main lane: {tids:?}"
    );
    // The fan-out phases still roll up under the root span on tid 0.
    let root = span(&records, "mine.parallel");
    assert_eq!(root.tid, 0);
    for w in &worker_spans {
        assert!(
            root.start_ns + root.dur_ns >= w.start_ns + w.dur_ns,
            "worker span outlives the root"
        );
    }
}

#[test]
fn chrome_export_is_valid_json_with_expected_events() {
    let log = example_log(20);
    let tracer = Tracer::new();
    let mut session = MineSession::new()
        .with_tracer(tracer.clone())
        .with_threads(4);
    mine_general_dag_in(&mut session, &log, &MinerOptions::default()).unwrap();

    let json = tracer.to_chrome_json();
    let value: Value = serde_json::from_str(&json).expect("chrome trace must parse as JSON");

    let events = match value.get("traceEvents") {
        Some(Value::Seq(events)) => events,
        other => panic!("traceEvents missing or not an array: {other:?}"),
    };
    let mut complete = 0usize;
    let mut thread_names = Vec::new();
    for e in events {
        let ph = match e.get("ph") {
            Some(Value::Str(s)) => s.clone(),
            other => panic!("event without ph: {other:?}"),
        };
        match ph.as_str() {
            "X" => {
                complete += 1;
                assert!(matches!(e.get("name"), Some(Value::Str(_))));
                assert!(
                    matches!(e.get("ts"), Some(Value::F64(_) | Value::U64(_))),
                    "ts must be numeric"
                );
                assert!(matches!(e.get("dur"), Some(Value::F64(_) | Value::U64(_))));
                assert!(e.get("tid").and_then(Value::as_u64).is_some());
            }
            "M" => {
                if let (Some(Value::Str(kind)), Some(args)) = (e.get("name"), e.get("args")) {
                    if kind == "thread_name" {
                        if let Some(Value::Str(label)) = args.get("name") {
                            thread_names.push(label.clone());
                        }
                    }
                }
            }
            other => panic!("unexpected event phase `{other}`"),
        }
    }
    assert_eq!(complete, tracer.records().len(), "one X event per span");
    assert!(
        thread_names.iter().any(|n| n == "main"),
        "main lane must be labeled: {thread_names:?}"
    );
    assert!(
        thread_names.iter().any(|n| n.starts_with("worker-")),
        "worker lanes must be labeled: {thread_names:?}"
    );
}

#[test]
fn disabled_tracer_stays_empty_through_full_pipeline() {
    let log = example_log(2);
    // Keep a shared handle on the (disabled) tracer so it can be
    // inspected after the session runs both pipeline halves.
    let tracer = Tracer::disabled();
    let mut session = MineSession::new().with_tracer(tracer.clone());
    let model = mine_general_dag_in(&mut session, &log, &MinerOptions::default()).unwrap();
    check_conformance_in(&mut session, &model, &log);
    assert!(!tracer.is_enabled());
    assert!(tracer.records().is_empty());
    let json = tracer.to_chrome_json();
    let value: Value = serde_json::from_str(&json).expect("even an empty trace parses");
    assert!(matches!(value.get("traceEvents"), Some(Value::Seq(_))));
}

/// Strategy: a random log of executions over activities `B`..`I`
/// wrapped in fixed start/end activities (same shape as
/// `tests/properties.rs`).
fn arb_log(max_execs: usize) -> impl Strategy<Value = WorkflowLog> {
    let activity_pool: Vec<String> = (b'B'..=b'I').map(|c| (c as char).to_string()).collect();
    let exec = proptest::sample::subsequence(activity_pool, 0..=8).prop_shuffle();
    proptest::collection::vec(exec, 1..=max_execs).prop_map(|execs| {
        let mut log = WorkflowLog::new();
        for middle in execs {
            let mut seq = vec!["A".to_string()];
            seq.extend(middle);
            seq.push("J".to_string());
            log.push_sequence(&seq).unwrap();
        }
        log
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Tracing must be observation only: an enabled tracer never
    /// changes the mined model.
    #[test]
    fn traced_mining_matches_untraced(log in arb_log(10)) {
        let options = MinerOptions::default();
        let untraced = mine_general_dag(&log, &options).unwrap();
        let tracer = Tracer::new();
        let mut session = MineSession::new().with_tracer(tracer.clone());
        let traced = mine_general_dag_in(&mut session, &log, &options).unwrap();
        prop_assert_eq!(untraced.edges_named(), traced.edges_named());
        prop_assert!(!tracer.records().is_empty(), "enabled tracer saw no spans");

        let (plain_model, plain_algo) = mine_auto(&log, &options).unwrap();
        let mut auto_session = MineSession::new().with_tracer(Tracer::new());
        let (traced_model, traced_algo) = mine_auto_in(&mut auto_session, &log, &options).unwrap();
        prop_assert_eq!(plain_algo, traced_algo);
        prop_assert_eq!(plain_model.edges_named(), traced_model.edges_named());
    }
}
